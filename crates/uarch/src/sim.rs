//! Out-of-order issue simulator.
//!
//! A deliberately compact model of the paper's Fig. 1 execution engine:
//! µops are dispatched in program order into a bounded scheduler
//! (`issue_width` per cycle), wake up when their operands complete, and
//! issue oldest-first to any free compatible port. A port stays busy for the
//! µop's reciprocal throughput; fused 512-bit ports occupy their partner
//! port simultaneously. This reproduces the two phenomena HEF exploits:
//!
//! 1. purely-SIMD code leaves the unfused scalar ports idle, and purely
//!    scalar code leaves the vector lane idle — hybrid code fills both;
//! 2. dependent long-latency µops (`vpgatherqq`) space out at their
//!    *latency* unless independent packs overlap them, in which case they
//!    space at their *throughput* (the paper's Fig. 3).

use crate::isa::uop_cost;
use crate::model::CpuModel;
use crate::trace::LoopBody;

/// Result of simulating a loop trace.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Cycles until the last µop completed.
    pub cycles: u64,
    /// Total µops executed.
    pub uops: u64,
    /// µops per cycle.
    pub ipc: f64,
    /// Cycles in which exactly 0, 1, 2, or ≥3 µops issued
    /// (the paper's Figs. 11–14 buckets).
    pub issued_hist: [u64; 4],
    /// Busy cycles per port, index-aligned with [`CpuModel::ports`].
    pub port_busy: Vec<u64>,
}

impl SimResult {
    /// Fraction of cycles in each issue bucket (0, 1, 2, ≥3).
    pub fn hist_fractions(&self) -> [f64; 4] {
        let total: u64 = self.issued_hist.iter().sum();
        if total == 0 {
            return [0.0; 4];
        }
        self.issued_hist.map(|c| c as f64 / total as f64)
    }

    /// Fraction of cycles in which at least `k` µops issued (`GE k` series
    /// of the paper's figures), `k` in `1..=3`.
    pub fn ge_fraction(&self, k: usize) -> f64 {
        let total: u64 = self.issued_hist.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let ge: u64 = self.issued_hist[k.min(3)..].iter().sum();
        ge as f64 / total as f64
    }
}

/// Simulate `iterations` repetitions of `body` on `model`.
///
/// Panics if the body fails [`LoopBody::validate`] or is empty.
pub fn simulate(model: &CpuModel, body: &LoopBody, iterations: usize) -> SimResult {
    body.validate().expect("invalid loop body");
    assert!(!body.is_empty(), "empty loop body");
    assert!(iterations > 0);

    let blen = body.len();
    let total = blen * iterations;
    // complete_at[g] = cycle at which µop g's result is available;
    // u64::MAX = not yet issued.
    let mut complete_at = vec![u64::MAX; total];
    let mut scheduler: Vec<usize> = Vec::with_capacity(model.scheduler_size);
    let mut port_free_at = vec![0u64; model.ports.len()];
    let mut port_busy = vec![0u64; model.ports.len()];
    let mut issued_hist = [0u64; 4];

    let mut next_dispatch = 0usize;
    let mut done = 0usize;
    let mut cycle: u64 = 0;
    let mut last_complete: u64 = 0;

    while done < total {
        // Dispatch (rename) stage: in order, bounded by the narrower of the
        // decoder and the rename width, and by scheduler capacity.
        let width = model.issue_width.min(model.decode_width) as usize;
        let mut dispatched = 0;
        while dispatched < width
            && scheduler.len() < model.scheduler_size
            && next_dispatch < total
        {
            scheduler.push(next_dispatch);
            next_dispatch += 1;
            dispatched += 1;
        }

        // Issue stage: oldest-first, to any free compatible port.
        let mut issued = 0usize;
        let mut si = 0usize;
        while si < scheduler.len() {
            let g = scheduler[si];
            let iter = g / blen;
            let idx = g % blen;
            let uop = &body.uops[idx];

            let ready = uop.deps.iter().all(|d| {
                if d.back > iter {
                    return true; // producer predates the first iteration
                }
                let pg = (iter - d.back) * blen + d.uop;
                complete_at[pg] != u64::MAX && complete_at[pg] <= cycle
            });
            if !ready {
                si += 1;
                continue;
            }

            let cost = uop_cost(uop.class);
            // Find a free port; for fused vector ports the partner must be
            // free too.
            let mut chosen: Option<usize> = None;
            for (pi, port) in model.ports.iter().enumerate() {
                if !port.accepts(uop.class) || port_free_at[pi] > cycle {
                    continue;
                }
                if uop.class.is_vector() {
                    if let Some(partner) = port.fused_with {
                        if port_free_at[partner] > cycle {
                            continue;
                        }
                    }
                }
                chosen = Some(pi);
                break;
            }
            let Some(pi) = chosen else {
                si += 1;
                continue;
            };

            let busy_until = cycle + cost.port_busy as u64;
            port_free_at[pi] = busy_until;
            port_busy[pi] += cost.port_busy as u64;
            if uop.class.is_vector() {
                if let Some(partner) = model.ports[pi].fused_with {
                    port_free_at[partner] = busy_until;
                    port_busy[partner] += cost.port_busy as u64;
                }
            }
            let c = cycle + cost.latency as u64;
            complete_at[g] = c;
            last_complete = last_complete.max(c);
            scheduler.remove(si); // keep oldest-first order; si now points at next
            issued += 1;
            done += 1;
        }

        issued_hist[issued.min(3)] += 1;
        cycle += 1;
        // Safety valve against modeling bugs.
        assert!(
            cycle < 1_000_000_000,
            "simulator failed to make progress (cycle {cycle}, done {done}/{total})"
        );
    }

    // Count the drain cycles (after the last issue until last completion) as
    // zero-issue cycles.
    while cycle < last_complete {
        issued_hist[0] += 1;
        cycle += 1;
    }

    let cycles = last_complete.max(cycle);
    SimResult {
        cycles,
        uops: total as u64,
        ipc: total as f64 / cycles as f64,
        issued_hist,
        port_busy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::UopClass::*;
    use crate::trace::{Dep, LoopBody};

    fn silver() -> CpuModel {
        CpuModel::silver_4110()
    }

    #[test]
    fn independent_scalar_alus_reach_pipe_count_ipc() {
        // 4 independent scalar ALU ops per iteration on 4 ALU ports:
        // steady-state IPC must approach 4 (bounded by issue width 4).
        let mut b = LoopBody::new();
        for _ in 0..4 {
            b.push(SAlu, vec![]);
        }
        let r = simulate(&silver(), &b, 1000);
        assert!(r.ipc > 3.5, "ipc = {}", r.ipc);
    }

    #[test]
    fn dependent_chain_is_latency_bound() {
        // One self-dependent multiply: IPC = 1/latency(SMul) = 1/3.
        let mut b = LoopBody::new();
        b.push(SMul, vec![Dep::carried(0)]);
        let r = simulate(&silver(), &b, 300);
        assert!((r.ipc - 1.0 / 3.0).abs() < 0.05, "ipc = {}", r.ipc);
    }

    #[test]
    fn dependent_gathers_space_at_latency_but_packed_at_throughput() {
        // The paper's Fig. 3 story. A single self-dependent gather chain:
        // one gather per 26 cycles.
        let mut chain = LoopBody::new();
        chain.push(VGather, vec![Dep::carried(0)]);
        let serial = simulate(&silver(), &chain, 200);
        assert!(
            (serial.ipc - 1.0 / 26.0).abs() < 0.005,
            "serial ipc = {}",
            serial.ipc
        );

        // Five independent chains: gathers overlap; the two load ports each
        // sustain one gather per 5 cycles → ~0.4 gathers/cycle once the
        // chains cover the latency.
        let mut packed = LoopBody::new();
        for i in 0..5 {
            packed.push(VGather, vec![Dep::carried(i)]);
        }
        let r = simulate(&silver(), &packed, 200);
        assert!(r.ipc > 4.0 * serial.ipc, "packed ipc = {} vs {}", r.ipc, serial.ipc);
    }

    #[test]
    fn single_vector_port_starves_on_silver_but_not_gold() {
        // Vector ALU ops + scalar ALU ops. On Silver all vector work
        // queues on p0; on Gold half of it moves to p5, freeing scalar
        // slots. Same trace must run faster on Gold.
        let mut b = LoopBody::new();
        for _ in 0..2 {
            b.push(VMul, vec![]);
        }
        for _ in 0..4 {
            b.push(SAlu, vec![]);
        }
        let rs = simulate(&CpuModel::silver_4110(), &b, 500);
        let rg = simulate(&CpuModel::gold_6240r(), &b, 500);
        assert!(
            rg.cycles < rs.cycles,
            "gold {} !< silver {}",
            rg.cycles,
            rs.cycles
        );
    }

    #[test]
    fn narrow_decoder_throttles_dispatch() {
        // Independent single-cycle ops: IPC is front-end-bound, so halving
        // the decode width must halve steady-state IPC.
        let mut b = LoopBody::new();
        for _ in 0..8 {
            b.push(SAlu, vec![]);
        }
        let wide = simulate(&silver(), &b, 500);
        let mut narrow_model = silver();
        narrow_model.decode_width = 2;
        let narrow = simulate(&narrow_model, &b, 500);
        assert!(narrow.ipc < wide.ipc * 0.6, "{} vs {}", narrow.ipc, wide.ipc);
    }

    #[test]
    fn ipc_never_exceeds_issue_width() {
        let mut b = LoopBody::new();
        for _ in 0..8 {
            b.push(SAlu, vec![]);
        }
        let r = simulate(&silver(), &b, 300);
        assert!(r.ipc <= 4.0 + 1e-9);
    }

    #[test]
    fn histogram_sums_to_cycles_and_fractions_to_one() {
        let mut b = LoopBody::new();
        b.push(SLoad, vec![]);
        b.push(SMul, vec![Dep::same(0)]);
        b.push(SStore, vec![Dep::same(1)]);
        let r = simulate(&silver(), &b, 100);
        let total: u64 = r.issued_hist.iter().sum();
        assert_eq!(total, r.cycles);
        let f = r.hist_fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(r.ge_fraction(1) <= 1.0);
        assert!(r.ge_fraction(3) <= r.ge_fraction(2));
    }

    #[test]
    fn port_busy_accounts_fused_partner() {
        // Build a two-port model where vector µops fuse p0+p1 and verify
        // the partner port is charged too (the mechanism is available even
        // though the shipped presets model vpmullq's cost via port_busy).
        let mut m = silver();
        m.ports[0].fused_with = Some(1);
        let mut b = LoopBody::new();
        b.push(VMul, vec![]);
        let r = simulate(&m, &b, 100);
        assert_eq!(r.port_busy[0], r.port_busy[1]);
        assert!(r.port_busy[0] > 0);
    }

    #[test]
    fn hybrid_statements_fill_idle_scalar_ports() {
        // The paper's core claim at trace level: adding scalar statements
        // to a vector-saturated loop increases elements per cycle, because
        // the scalar ALUs were idle. Vector-only: 2 VMul chains (p0-bound);
        // hybrid: same plus 2 independent scalar mul chains on p1.
        let mut vec_only = LoopBody::new();
        for _ in 0..2 {
            vec_only.push(VMul, vec![]);
        }
        let rv = simulate(&silver(), &vec_only, 400);
        let mut hybrid = LoopBody::new();
        for _ in 0..2 {
            hybrid.push(VMul, vec![]);
        }
        for _ in 0..2 {
            hybrid.push(SMul, vec![]);
        }
        let rh = simulate(&silver(), &hybrid, 400);
        // Hybrid does 2 vec (16 lanes) + 2 scalar = 18 elems/iter vs 16.
        let v_epc = 16.0 * 400.0 / rv.cycles as f64;
        let h_epc = 18.0 * 400.0 / rh.cycles as f64;
        assert!(
            h_epc > v_epc * 1.05,
            "hybrid {h_epc:.3} elems/cycle vs vector-only {v_epc:.3}"
        );
    }
}

//! Analytic cache model.
//!
//! The paper's scale-dependent observations (§V.B: "the different size hash
//! tables are stored in different levels of cache") come down to two access
//! patterns: sequential streams over the fact-table columns and uniform
//! random probes into join hash tables. For both, the expected miss counts
//! per level follow directly from the working-set size versus the cache
//! sizes, which is what this model computes. It is the substitution for the
//! `LLC-misses` counter rows of Tables III–V.

use crate::model::CpuModel;

/// A memory access pattern of one operator phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccessPattern {
    /// Sequential pass over `bytes` bytes (each 64-byte line touched once).
    Stream { bytes: u64 },
    /// `count` independent accesses uniformly distributed over a resident
    /// working set of `working_set` bytes (e.g. hash-table probes).
    RandomProbe { count: u64, working_set: u64 },
}

/// Expected misses per cache level ("misses" at LLC = lines fetched from
/// memory).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MissCounts {
    pub l1: u64,
    pub l2: u64,
    pub llc: u64,
}

impl MissCounts {
    /// Accumulate another phase's misses.
    pub fn add(&mut self, other: MissCounts) {
        self.l1 += other.l1;
        self.l2 += other.l2;
        self.llc += other.llc;
    }
}

/// The cache model bound to a CPU.
#[derive(Debug, Clone, Copy)]
pub struct CacheSim<'a> {
    model: &'a CpuModel,
}

impl<'a> CacheSim<'a> {
    pub fn new(model: &'a CpuModel) -> Self {
        CacheSim { model }
    }

    /// Expected misses for one pattern.
    pub fn misses(&self, pattern: AccessPattern) -> MissCounts {
        const LINE: u64 = 64;
        match pattern {
            AccessPattern::Stream { bytes } => {
                let lines = bytes.div_ceil(LINE);
                // A streaming pass misses every line at every level once the
                // stream exceeds that level (no temporal reuse).
                MissCounts {
                    l1: if bytes > self.model.l1d.bytes as u64 { lines } else { 0 },
                    l2: if bytes > self.model.l2.bytes as u64 { lines } else { 0 },
                    llc: if bytes > self.model.llc.bytes as u64 { lines } else { 0 },
                }
            }
            AccessPattern::RandomProbe { count, working_set } => {
                let miss_ratio = |cap: usize| -> f64 {
                    if working_set == 0 {
                        return 0.0;
                    }
                    (1.0 - cap as f64 / working_set as f64).max(0.0)
                };
                MissCounts {
                    l1: (count as f64 * miss_ratio(self.model.l1d.bytes)) as u64,
                    l2: (count as f64 * miss_ratio(self.model.l2.bytes)) as u64,
                    llc: (count as f64 * miss_ratio(self.model.llc.bytes)) as u64,
                }
            }
        }
    }

    /// Expected misses over a sequence of phases.
    pub fn misses_all(&self, patterns: &[AccessPattern]) -> MissCounts {
        let mut total = MissCounts::default();
        for &p in patterns {
            total.add(self.misses(p));
        }
        total
    }

    /// Expected extra stall cycles caused by `m`, with `mlp` overlapping
    /// misses in flight (memory-level parallelism ≥ 1; out-of-order cores
    /// and prefetchers hide a large share of miss latency).
    pub fn stall_cycles(&self, m: &MissCounts, mlp: f64) -> u64 {
        assert!(mlp >= 1.0);
        let l2_pen = (self.model.l2.latency - self.model.l1d.latency) as f64;
        let llc_pen = (self.model.llc.latency - self.model.l2.latency) as f64;
        let mem_pen = (self.model.mem_latency - self.model.llc.latency) as f64;
        let raw = m.l1 as f64 * l2_pen + m.l2 as f64 * llc_pen + m.llc as f64 * mem_pen;
        (raw / mlp) as u64
    }

    /// Memory-level parallelism achieved by a probe loop that keeps `f`
    /// independent probes in flight via software prefetch (`f = 0` is the
    /// flat loop: the out-of-order window alone sustains about one miss).
    ///
    /// Monotone non-decreasing in `f` and capped by the core's line-fill
    /// buffers ([`CpuModel::mem_parallelism`]) — the same assumption the
    /// tuner's pruning along the `f` axis relies on.
    pub fn effective_mlp(&self, f: usize) -> f64 {
        let cap = self.model.mem_parallelism.max(1.0);
        ((1 + f) as f64).clamp(1.0, cap)
    }

    /// Prefetch-aware memory cost: expected stall cycles of `m` when the
    /// loop runs at prefetch depth `f`. This is what keeps simulated probe
    /// Mcycles comparable with measured ones across the `f` axis.
    pub fn prefetch_stall_cycles(&self, m: &MissCounts, f: usize) -> u64 {
        self.stall_cycles(m, self.effective_mlp(f))
    }

    /// MLP available to a probe loop when `background` line-fill buffers are
    /// held by co-resident streaming stages (column scans, gathered takes).
    /// A fused pipeline shares one LFB pool, so each concurrent stream
    /// shaves a buffer off the cap the probe's prefetches can fill; the
    /// floor of 1 keeps the model sane when streams oversubscribe the pool.
    pub fn shared_mlp(&self, f: usize, background: usize) -> f64 {
        let cap = (self.model.mem_parallelism - background as f64).max(1.0);
        ((1 + f) as f64).clamp(1.0, cap)
    }

    /// Stall cycles of `m` at prefetch depth `f` with `background` LFBs
    /// occupied by co-resident streams — the memory term of the pipeline
    /// co-tuning cost model.
    pub fn coresident_stall_cycles(&self, m: &MissCounts, f: usize, background: usize) -> u64 {
        self.stall_cycles(m, self.shared_mlp(f, background))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CpuModel;

    #[test]
    fn small_stream_stays_in_l1() {
        let m = CpuModel::silver_4110();
        let c = CacheSim::new(&m);
        let r = c.misses(AccessPattern::Stream { bytes: 16 << 10 });
        assert_eq!(r, MissCounts::default());
    }

    #[test]
    fn big_stream_misses_all_levels() {
        let m = CpuModel::silver_4110();
        let c = CacheSim::new(&m);
        let bytes = 100 << 20;
        let r = c.misses(AccessPattern::Stream { bytes });
        assert_eq!(r.l1, bytes / 64);
        assert_eq!(r.llc, bytes / 64);
    }

    #[test]
    fn probe_misses_scale_with_working_set() {
        let m = CpuModel::silver_4110();
        let c = CacheSim::new(&m);
        let small = c.misses(AccessPattern::RandomProbe {
            count: 1_000_000,
            working_set: 16 << 10, // fits in L1
        });
        assert_eq!(small, MissCounts::default());

        let l2_sized = c.misses(AccessPattern::RandomProbe {
            count: 1_000_000,
            working_set: 512 << 10, // exceeds L1, fits L2
        });
        assert!(l2_sized.l1 > 0 && l2_sized.l2 == 0 && l2_sized.llc == 0);

        let huge = c.misses(AccessPattern::RandomProbe {
            count: 1_000_000,
            working_set: 1 << 30,
        });
        assert!(huge.llc > huge.l2 / 2, "memory-resident probes mostly miss LLC");
        // Monotone across levels: l1 misses >= l2 misses >= llc misses.
        assert!(huge.l1 >= huge.l2 && huge.l2 >= huge.llc);
    }

    #[test]
    fn effective_mlp_is_monotone_and_lfb_capped() {
        let m = CpuModel::silver_4110();
        let c = CacheSim::new(&m);
        assert_eq!(c.effective_mlp(0), 1.0);
        let mut last = 0.0;
        for f in [0usize, 1, 4, 8, 16, 32, 64] {
            let mlp = c.effective_mlp(f);
            assert!(mlp >= last, "mlp must not decrease with f");
            last = mlp;
        }
        assert_eq!(c.effective_mlp(1 << 20), m.mem_parallelism);
    }

    #[test]
    fn prefetch_shrinks_modeled_stalls_until_the_lfb_cap() {
        let m = CpuModel::silver_4110();
        let c = CacheSim::new(&m);
        let misses = c.misses(AccessPattern::RandomProbe {
            count: 1_000_000,
            working_set: 64 << 20,
        });
        let flat = c.prefetch_stall_cycles(&misses, 0);
        let deep = c.prefetch_stall_cycles(&misses, 16);
        assert!(deep * 4 < flat, "{deep} vs {flat}");
        // Past the line-fill-buffer cap, more depth buys nothing.
        assert_eq!(
            c.prefetch_stall_cycles(&misses, 64),
            c.prefetch_stall_cycles(&misses, 4096)
        );
    }

    #[test]
    fn shared_mlp_loses_to_background_streams_but_never_goes_below_one() {
        let m = CpuModel::silver_4110();
        let c = CacheSim::new(&m);
        // No background: identical to the solo model.
        assert_eq!(c.shared_mlp(16, 0), c.effective_mlp(16));
        // Background streams shrink the cap monotonically.
        let mut last = f64::INFINITY;
        for bg in 0..16 {
            let mlp = c.shared_mlp(64, bg);
            assert!(mlp <= last, "cap must not grow with background");
            assert!(mlp >= 1.0);
            last = mlp;
        }
        // Oversubscribed pool floors at 1.
        assert_eq!(c.shared_mlp(64, 1000), 1.0);
    }

    #[test]
    fn coresident_stalls_exceed_solo_stalls() {
        let m = CpuModel::silver_4110();
        let c = CacheSim::new(&m);
        let misses = c.misses(AccessPattern::RandomProbe {
            count: 1_000_000,
            working_set: 64 << 20,
        });
        let solo = c.prefetch_stall_cycles(&misses, 16);
        let shared = c.coresident_stall_cycles(&misses, 16, 6);
        assert!(shared > solo, "{shared} vs {solo}");
    }

    #[test]
    fn stall_cycles_shrink_with_mlp() {
        let m = CpuModel::silver_4110();
        let c = CacheSim::new(&m);
        let misses = MissCounts { l1: 1000, l2: 500, llc: 100 };
        let serial = c.stall_cycles(&misses, 1.0);
        let overlapped = c.stall_cycles(&misses, 8.0);
        assert!(overlapped * 7 < serial, "{overlapped} vs {serial}");
    }
}

//! AVX-512 license frequency model.
//!
//! Skylake-SP cores clock down when 512-bit units are active: license L0
//! (scalar / light SSE) runs at the full turbo, L1 (light AVX-512) slightly
//! below, L2 (sustained heavy AVX-512 — multiplies and FMAs) markedly below.
//! The paper's Tables III–V "Frequency" rows show exactly this: the scalar
//! implementation runs at ~2.97 GHz on the Silver 4110 while the SIMD and
//! hybrid ones run at ~2.85 GHz. Hybrid execution keeps the *work per cycle*
//! high enough that the small downclock is worth it; this model lets the
//! harness convert simulated cycles into wall-clock milliseconds per CPU.

use crate::model::CpuModel;
use crate::trace::LoopBody;
use crate::isa::UopClass;

/// AVX frequency license classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LicenseLevel {
    /// Scalar / 128-bit: full turbo.
    L0,
    /// Light 512-bit (loads, logic, gathers): small downclock.
    L1,
    /// Heavy sustained 512-bit (multiplies): large downclock.
    L2,
}

impl LicenseLevel {
    /// Index into [`CpuModel::freq_ghz`].
    pub fn index(self) -> usize {
        match self {
            LicenseLevel::L0 => 0,
            LicenseLevel::L1 => 1,
            LicenseLevel::L2 => 2,
        }
    }
}

/// Classify a loop body into a license level.
///
/// Heuristic mirroring the documented Intel behaviour: any sustained
/// 512-bit activity costs L1; a *dense* stream of 512-bit multiplies
/// (more than a quarter of all µops) costs L2. Memory-bound query loops
/// therefore stay at L1, matching the paper's SSB measurements where the
/// SIMD engine runs within ~4% of the scalar clock.
pub fn classify(body: &LoopBody) -> LicenseLevel {
    let total = body.len().max(1);
    let vec = body.uops.iter().filter(|u| u.class.is_vector()).count();
    let vmul = body
        .uops
        .iter()
        .filter(|u| u.class == UopClass::VMul)
        .count();
    if vec == 0 {
        LicenseLevel::L0
    } else if vmul * 4 > total {
        LicenseLevel::L2
    } else {
        LicenseLevel::L1
    }
}

/// Effective frequency (GHz) of `body` on `model`.
pub fn frequency_ghz(model: &CpuModel, body: &LoopBody) -> f64 {
    model.freq_ghz[classify(body).index()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::LoopBody;
    use crate::UopClass::*;

    #[test]
    fn scalar_body_is_l0() {
        let mut b = LoopBody::new();
        b.push(SAlu, vec![]);
        b.push(SMul, vec![]);
        assert_eq!(classify(&b), LicenseLevel::L0);
    }

    #[test]
    fn mul_heavy_vector_body_is_l2() {
        let mut b = LoopBody::new();
        for _ in 0..4 {
            b.push(VMul, vec![]);
        }
        for _ in 0..4 {
            b.push(VAlu, vec![]);
        }
        assert_eq!(classify(&b), LicenseLevel::L2);
    }

    #[test]
    fn light_vector_body_is_l1() {
        let mut b = LoopBody::new();
        for _ in 0..8 {
            b.push(VAlu, vec![]);
        }
        b.push(VMul, vec![]); // 1/9 ≤ 1/8
        assert_eq!(classify(&b), LicenseLevel::L1);
    }

    #[test]
    fn frequency_monotone_in_license() {
        let m = crate::CpuModel::silver_4110();
        let mut scalar = LoopBody::new();
        scalar.push(SAlu, vec![]);
        let mut heavy = LoopBody::new();
        heavy.push(VMul, vec![]);
        assert!(frequency_ghz(&m, &scalar) > frequency_ghz(&m, &heavy));
    }
}

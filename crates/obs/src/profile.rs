//! Streaming self-time profiles: aggregate the active trace session's span
//! records into a bounded [`ProfileTree`] — no Chrome-JSON detour — and
//! render it as an in-terminal flamegraph or a top-N self-time table.
//!
//! Construction replays each thread's `Begin`/`End` records against a stack,
//! merging repeated spans by `(name, label)` under their parent, so the tree
//! stays small no matter how many morsels ran. Memory is bounded three ways:
//! at most [`MAX_DEPTH`] live stack frames feed distinct nodes (deeper spans
//! fold into a `(deep)` child), each node keeps at most [`MAX_CHILDREN`]
//! named children (the rest merge into `(other)`), and each thread's arena
//! is capped at [`MAX_NODES`] named nodes. Instant events (governance
//! actions, diag warnings) are annotated inline on whichever span was open
//! when they fired.
//!
//! Invariant (checked by [`ProfileTree::check_nesting`] and a proptest):
//! for every node, `self_ns + Σ children.total_ns == total_ns` — a child's
//! inclusive time can never exceed what its parent has left to give.
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Stack frames deeper than this fold into a single `(deep)` node.
pub const MAX_DEPTH: usize = 16;
/// Named children per node; further distinct spans merge into `(other)`.
pub const MAX_CHILDREN: usize = 24;
/// Named nodes per thread; past this, new spans merge into `(other)`.
pub const MAX_NODES: usize = 4096;
/// Distinct inline event names per node; the rest merge into `(other)`.
pub const MAX_EVENTS: usize = 8;

const OTHER: &str = "(other)";
const DEEP: &str = "(deep)";

/// One aggregated span in the profile: every execution of span `name` (with
/// dynamic label `label`) under the same parent path.
#[derive(Debug, Clone)]
pub struct ProfileNode {
    /// Static span name (`query`, `worker`, `morsel`, …).
    pub name: String,
    /// Dynamic label, when the span carried one (e.g. `q2.1 [hybrid]`).
    pub label: String,
    /// Number of merged span executions.
    pub count: u64,
    /// Inclusive wall time across all executions.
    pub total_ns: u64,
    /// Exclusive wall time: inclusive minus time spent in child spans.
    pub self_ns: u64,
    /// Instant events that fired while this span was innermost, by name.
    pub events: Vec<(String, u64)>,
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    /// `name label` (or just `name` when unlabeled).
    pub fn title(&self) -> String {
        if self.label.is_empty() {
            self.name.clone()
        } else {
            format!("{} {}", self.name, self.label)
        }
    }
}

/// All spans recorded by one thread, as a forest of root spans.
#[derive(Debug, Clone)]
pub struct ThreadProfile {
    pub tid: u32,
    pub name: String,
    /// Records the trace buffer dropped at saturation (profile is partial).
    pub dropped: u64,
    pub roots: Vec<ProfileNode>,
}

impl ThreadProfile {
    /// Inclusive wall time of this thread's root spans.
    pub fn total_ns(&self) -> u64 {
        self.roots.iter().map(|r| r.total_ns).sum()
    }
}

/// A per-thread self-time profile of one trace session.
#[derive(Debug, Clone, Default)]
pub struct ProfileTree {
    pub threads: Vec<ThreadProfile>,
}

// ---------------------------------------------------------------------------
// Construction

struct NodeBuf {
    name: String,
    label: String,
    count: u64,
    total_ns: u64,
    self_ns: u64,
    events: Vec<(String, u64)>,
    children: Vec<usize>,
}

struct Frame {
    node: usize,
    begin_ns: u64,
    child_ns: u64,
}

struct ThreadBuilder {
    name: String,
    dropped: u64,
    arena: Vec<NodeBuf>,
    roots: Vec<usize>,
    stack: Vec<Frame>,
    max_ts: u64,
}

impl ThreadBuilder {
    fn new(name: String, dropped: u64) -> Self {
        ThreadBuilder {
            name,
            dropped,
            arena: Vec::new(),
            roots: Vec::new(),
            stack: Vec::new(),
            max_ts: 0,
        }
    }

    /// Find or create the child of `parent` (`None` = root set) keyed by
    /// `(name, label)`, respecting the children/arena bounds.
    fn child(&mut self, parent: Option<usize>, name: &str, label: &str) -> usize {
        let siblings: &Vec<usize> = match parent {
            Some(p) => &self.arena[p].children,
            None => &self.roots,
        };
        if let Some(&i) = siblings
            .iter()
            .find(|&&i| self.arena[i].name == name && self.arena[i].label == label)
        {
            return i;
        }
        let over_siblings = siblings.len() >= MAX_CHILDREN;
        let over_arena = self.arena.len() >= MAX_NODES;
        let (name, label) = if (over_siblings || over_arena) && name != OTHER {
            (OTHER, "")
        } else {
            (name, label)
        };
        // Re-probe under the (possibly) merged key.
        let siblings: &Vec<usize> = match parent {
            Some(p) => &self.arena[p].children,
            None => &self.roots,
        };
        if let Some(&i) = siblings
            .iter()
            .find(|&&i| self.arena[i].name == name && self.arena[i].label == label)
        {
            return i;
        }
        let i = self.arena.len();
        self.arena.push(NodeBuf {
            name: name.to_string(),
            label: label.to_string(),
            count: 0,
            total_ns: 0,
            self_ns: 0,
            events: Vec::new(),
            children: Vec::new(),
        });
        match parent {
            Some(p) => self.arena[p].children.push(i),
            None => self.roots.push(i),
        }
        i
    }

    fn begin(&mut self, name: &str, label: &str, ts_ns: u64) {
        self.max_ts = self.max_ts.max(ts_ns);
        let parent = self.stack.last().map(|f| f.node);
        // Past MAX_DEPTH every deeper span folds into one (deep) child, so
        // arbitrarily nested schedules cannot grow the tree — only the
        // stack, which shrinks again at End.
        let node = if self.stack.len() >= MAX_DEPTH {
            self.child(parent, DEEP, "")
        } else {
            self.child(parent, name, label)
        };
        self.stack.push(Frame {
            node,
            begin_ns: ts_ns,
            child_ns: 0,
        });
    }

    fn end(&mut self, ts_ns: u64) {
        self.max_ts = self.max_ts.max(ts_ns);
        let Some(f) = self.stack.pop() else {
            return; // unmatched End: tolerate, like the JSON renderer
        };
        let dur = ts_ns.saturating_sub(f.begin_ns);
        let n = &mut self.arena[f.node];
        n.count += 1;
        n.total_ns += dur;
        n.self_ns += dur.saturating_sub(f.child_ns);
        if let Some(p) = self.stack.last_mut() {
            p.child_ns += dur;
        }
    }

    fn instant(&mut self, name: &str, ts_ns: u64) {
        self.max_ts = self.max_ts.max(ts_ns);
        let Some(f) = self.stack.last() else {
            return; // instant outside any span: nothing to annotate
        };
        let events = &mut self.arena[f.node].events;
        if let Some(e) = events.iter_mut().find(|(n, _)| n == name) {
            e.1 += 1;
        } else if events.len() < MAX_EVENTS {
            events.push((name.to_string(), 1));
        } else if let Some(e) = events.iter_mut().find(|(n, _)| n == OTHER) {
            e.1 += 1;
        } else {
            events.push((OTHER.to_string(), 1));
        }
    }

    fn finish(mut self, tid: u32) -> ThreadProfile {
        // Auto-close spans still open at the last observed timestamp, same
        // convention as the Chrome renderer.
        while !self.stack.is_empty() {
            self.end(self.max_ts);
        }
        let roots = self
            .roots
            .clone()
            .into_iter()
            .map(|i| to_node(&self.arena, i))
            .collect();
        ThreadProfile {
            tid,
            name: self.name,
            dropped: self.dropped,
            roots,
        }
    }
}

fn to_node(arena: &[NodeBuf], i: usize) -> ProfileNode {
    let b = &arena[i];
    ProfileNode {
        name: b.name.clone(),
        label: b.label.clone(),
        count: b.count,
        total_ns: b.total_ns,
        self_ns: b.self_ns,
        events: b.events.clone(),
        children: b.children.iter().map(|&c| to_node(arena, c)).collect(),
    }
}

/// Incremental [`ProfileTree`] builder over raw span records. The engine
/// feeds it via [`ProfileTree::from_active_session`]; tests feed synthetic
/// schedules directly.
#[derive(Default)]
pub struct ProfileBuilder {
    threads: BTreeMap<u32, ThreadBuilder>,
}

impl ProfileBuilder {
    pub fn new() -> Self {
        ProfileBuilder::default()
    }

    fn thread_mut(&mut self, tid: u32) -> &mut ThreadBuilder {
        self.threads
            .entry(tid)
            .or_insert_with(|| ThreadBuilder::new(format!("thread-{tid}"), 0))
    }

    /// Register (or rename) a thread and its drop counter.
    pub fn thread(&mut self, tid: u32, name: &str, dropped: u64) {
        let t = self.thread_mut(tid);
        t.name = name.to_string();
        t.dropped = dropped;
    }

    pub fn begin(&mut self, tid: u32, name: &str, label: &str, ts_ns: u64) {
        self.thread_mut(tid).begin(name, label, ts_ns);
    }

    pub fn end(&mut self, tid: u32, ts_ns: u64) {
        self.thread_mut(tid).end(ts_ns);
    }

    pub fn instant(&mut self, tid: u32, name: &str, ts_ns: u64) {
        self.thread_mut(tid).instant(name, ts_ns);
    }

    pub fn finish(self) -> ProfileTree {
        ProfileTree {
            threads: self
                .threads
                .into_iter()
                .map(|(tid, t)| t.finish(tid))
                .collect(),
        }
    }
}

impl ProfileTree {
    /// Aggregate the active trace session's buffers into a profile. The
    /// session stays active (buffers keep recording); `None` when no
    /// session is running.
    pub fn from_active_session() -> Option<ProfileTree> {
        // Two independent FnMut callbacks need disjoint access: a RefCell
        // keeps the builder shared without unsafe (calls never overlap).
        let b = std::cell::RefCell::new(ProfileBuilder::new());
        let ok = crate::trace::visit_records(
            |tid, name, dropped| b.borrow_mut().thread(tid, name, dropped),
            |tid, r| match r.kind {
                crate::trace::RecKind::Begin => {
                    b.borrow_mut().begin(tid, r.name, r.label, r.ts_ns)
                }
                crate::trace::RecKind::End => b.borrow_mut().end(tid, r.ts_ns),
                crate::trace::RecKind::Instant => b.borrow_mut().instant(tid, r.name, r.ts_ns),
            },
        );
        if !ok {
            return None;
        }
        Some(b.into_inner().finish())
    }

    /// Records dropped across all thread buffers (profile is partial if >0).
    pub fn dropped(&self) -> u64 {
        self.threads.iter().map(|t| t.dropped).sum()
    }

    /// Total executions of spans named `name`, across all threads/paths.
    pub fn count_of(&self, name: &str) -> u64 {
        fn walk(n: &ProfileNode, name: &str) -> u64 {
            let own = if n.name == name { n.count } else { 0 };
            own + n.children.iter().map(|c| walk(c, name)).sum::<u64>()
        }
        self.threads
            .iter()
            .flat_map(|t| t.roots.iter())
            .map(|r| walk(r, name))
            .sum()
    }

    /// Verify the nesting invariant on every node:
    /// `self_ns + Σ children.total_ns == total_ns` (so in particular no
    /// child's inclusive time exceeds its parent's).
    pub fn check_nesting(&self) -> Result<(), String> {
        fn walk(n: &ProfileNode, path: &str) -> Result<(), String> {
            let here = format!("{path}/{}", n.name);
            let child_sum: u64 = n.children.iter().map(|c| c.total_ns).sum();
            if n.self_ns.saturating_add(child_sum) != n.total_ns {
                return Err(format!(
                    "{here}: self {} + children {} != total {}",
                    n.self_ns, child_sum, n.total_ns
                ));
            }
            for c in &n.children {
                walk(c, &here)?;
            }
            Ok(())
        }
        for t in &self.threads {
            for r in &t.roots {
                walk(r, &t.name)?;
            }
        }
        Ok(())
    }

    /// Top-`n` spans by aggregate self time: `(title, count, self_ns)`,
    /// merged across threads and paths.
    pub fn top_self(&self, n: usize) -> Vec<(String, u64, u64)> {
        let mut agg: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        fn walk(node: &ProfileNode, agg: &mut BTreeMap<String, (u64, u64)>) {
            let e = agg.entry(node.title()).or_insert((0, 0));
            e.0 += node.count;
            e.1 += node.self_ns;
            for c in &node.children {
                walk(c, agg);
            }
        }
        for t in &self.threads {
            for r in &t.roots {
                walk(r, &mut agg);
            }
        }
        let mut rows: Vec<(String, u64, u64)> =
            agg.into_iter().map(|(k, (c, s))| (k, c, s)).collect();
        rows.sort_by(|a, b| b.2.cmp(&a.2).then_with(|| a.0.cmp(&b.0)));
        rows.truncate(n);
        rows
    }

    /// In-terminal flamegraph: per thread, an indented span tree with bars
    /// proportional to inclusive time, counts, total/self milliseconds, and
    /// inline `[event×k]` annotations.
    pub fn render(&self) -> String {
        const BAR_W: usize = 20;
        let mut out = String::new();
        for t in &self.threads {
            let scale = t.roots.iter().map(|r| r.total_ns).max().unwrap_or(0);
            let _ = write!(out, "tid {} {}", t.tid, t.name);
            if t.dropped > 0 {
                let _ = write!(out, "  (partial: {} records dropped)", t.dropped);
            }
            out.push('\n');
            for r in &t.roots {
                render_node(&mut out, r, 1, scale, BAR_W);
            }
        }
        if out.is_empty() {
            out.push_str("(no spans recorded)\n");
        }
        out
    }

    /// Top-N self-time table.
    pub fn render_top(&self, n: usize) -> String {
        let rows = self.top_self(n);
        let mut out = String::from("span                              count    self-ms\n");
        for (title, count, self_ns) in rows {
            let _ = writeln!(
                out,
                "{:<32} {:>6}  {:>9.3}",
                title,
                count,
                self_ns as f64 / 1e6
            );
        }
        out
    }
}

fn render_node(out: &mut String, n: &ProfileNode, depth: usize, scale: u64, bar_w: usize) {
    let frac = if scale == 0 {
        0.0
    } else {
        n.total_ns as f64 / scale as f64
    };
    let mut fill = (frac * bar_w as f64).round() as usize;
    if n.total_ns > 0 {
        fill = fill.clamp(1, bar_w);
    }
    let bar = format!("{}{}", "█".repeat(fill), "·".repeat(bar_w - fill));
    let indent = "  ".repeat(depth);
    let _ = write!(
        out,
        "{indent}{bar} {:<24} {:>5}x {:>9.3}ms total {:>9.3}ms self",
        n.title(),
        n.count,
        n.total_ns as f64 / 1e6,
        n.self_ns as f64 / 1e6
    );
    for (name, k) in &n.events {
        let _ = write!(out, "  [{name}×{k}]");
    }
    out.push('\n');
    for c in &n.children {
        render_node(out, c, depth + 1, scale, bar_w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_aggregate_and_self_time() {
        let mut b = ProfileBuilder::new();
        b.thread(0, "main", 0);
        b.begin(0, "query", "q2.1 [hybrid]", 0);
        b.begin(0, "morsel", "", 100);
        b.end(0, 400); // morsel #1: 300ns
        b.begin(0, "morsel", "", 500);
        b.end(0, 700); // morsel #2: 200ns
        b.end(0, 1000); // query: 1000ns total, 500ns self
        let t = b.finish();
        t.check_nesting().expect("invariant");
        assert_eq!(t.threads.len(), 1);
        let q = &t.threads[0].roots[0];
        assert_eq!(q.title(), "query q2.1 [hybrid]");
        assert_eq!(q.total_ns, 1000);
        assert_eq!(q.self_ns, 500);
        let m = &q.children[0];
        assert_eq!(m.count, 2);
        assert_eq!(m.total_ns, 500);
        assert_eq!(m.self_ns, 500);
        assert_eq!(t.count_of("morsel"), 2);
    }

    #[test]
    fn open_spans_auto_close_at_max_ts() {
        let mut b = ProfileBuilder::new();
        b.begin(3, "query", "", 0);
        b.begin(3, "morsel", "", 200);
        b.instant(3, "govern_deadline", 900);
        // No Ends: a deadline fired mid-run. Both close at max_ts = 900.
        let t = b.finish();
        t.check_nesting().expect("invariant");
        let q = &t.threads[0].roots[0];
        assert_eq!(q.total_ns, 900);
        assert_eq!(q.children[0].total_ns, 700);
        assert_eq!(q.children[0].events, vec![("govern_deadline".into(), 1)]);
    }

    #[test]
    fn unmatched_end_is_tolerated() {
        let mut b = ProfileBuilder::new();
        b.end(0, 50);
        b.begin(0, "a", "", 100);
        b.end(0, 200);
        let t = b.finish();
        t.check_nesting().expect("invariant");
        assert_eq!(t.threads[0].roots.len(), 1);
        assert_eq!(t.threads[0].roots[0].total_ns, 100);
    }

    #[test]
    fn bounded_children_merge_into_other() {
        let mut b = ProfileBuilder::new();
        let mut ts = 0u64;
        b.begin(0, "root", "", ts);
        for i in 0..(MAX_CHILDREN + 10) {
            ts += 10;
            // Distinct labels force distinct (name, label) keys.
            b.begin(0, "child", &format!("c{i}"), ts);
            ts += 5;
            b.end(0, ts);
        }
        ts += 10;
        b.end(0, ts);
        let t = b.finish();
        t.check_nesting().expect("invariant");
        let root = &t.threads[0].roots[0];
        assert!(root.children.len() <= MAX_CHILDREN + 1);
        let other = root
            .children
            .iter()
            .find(|c| c.name == OTHER)
            .expect("overflow merged");
        assert_eq!(other.count, 10); // every over-cap child merged
    }

    #[test]
    fn depth_overflow_folds_into_deep() {
        let mut b = ProfileBuilder::new();
        for i in 0..(MAX_DEPTH as u64 + 8) {
            b.begin(0, "lvl", &format!("{i}"), i * 10);
        }
        for i in (0..(MAX_DEPTH as u64 + 8)).rev() {
            b.end(0, 1000 + i);
        }
        let t = b.finish();
        t.check_nesting().expect("invariant");
        // Walk to depth MAX_DEPTH: everything deeper is one (deep) chain.
        let mut n = &t.threads[0].roots[0];
        for _ in 1..MAX_DEPTH {
            assert_eq!(n.children.len(), 1);
            n = &n.children[0];
        }
        assert!(n.children.iter().all(|c| c.name == DEEP || c.name == "lvl"));
    }

    #[test]
    fn render_is_nonempty_and_mentions_spans() {
        let mut b = ProfileBuilder::new();
        b.thread(0, "worker-0", 0);
        b.begin(0, "worker", "", 0);
        b.begin(0, "morsel", "", 10);
        b.instant(0, "govern_degrade", 15);
        b.end(0, 90);
        b.end(0, 100);
        let t = b.finish();
        let flame = t.render();
        assert!(flame.contains("worker-0"));
        assert!(flame.contains("morsel"));
        assert!(flame.contains("govern_degrade"));
        let top = t.render_top(5);
        assert!(top.contains("morsel"));
    }
}

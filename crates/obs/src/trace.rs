//! Structured tracing: fixed-size records in per-thread buffers, drained to
//! Chrome `trace_event` JSON.
//!
//! Design:
//!
//! * **Epoch clock.** One process-wide `Instant` is pinned the first time a
//!   session starts; every record stores nanoseconds since that epoch, so
//!   timestamps from all threads share one axis without synchronization.
//! * **Per-thread buffers.** Each thread lazily registers a buffer with the
//!   active session (one mutex acquisition per thread per session) and then
//!   appends through its own `Mutex<Sink>`; the lock is uncontended in steady
//!   state because only the owning thread appends — contention exists only at
//!   drain time. Records are fixed-size `Copy` structs: a `&'static str`
//!   name, up to [`MAX_ARGS`] `(&'static str, i64)` args, and a small inline
//!   label buffer for dynamic strings (truncated, never allocated).
//! * **Bounded memory.** Buffers saturate at a cap (`HEF_TRACE_BUF`,
//!   default 65536 records/thread). Once full, new spans are *dropped as a
//!   unit*: a dropped `Begin` increments a drop-depth so its matching `End`
//!   is dropped too, keeping the emitted stream balanced. A drop counter is
//!   reported in the summary.
//! * **Disabled path.** [`enabled`] / [`enabled_fine`] are one relaxed
//!   atomic load (after a one-time env probe). The `span!` macros evaluate
//!   nothing else when the level says no.
use std::cell::RefCell;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Maximum number of `(key, value)` args per record.
pub const MAX_ARGS: usize = 4;
/// Inline label capacity in bytes; longer labels are truncated.
pub const LABEL_CAP: usize = 32;
const DEFAULT_CAP: usize = 1 << 16;

/// Trace verbosity. `Coarse` records query/tune/registry-level spans;
/// `Fine` adds per-morsel and per-translation spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Off,
    Coarse,
    Fine,
}

// LEVEL encoding: 0 = uninitialized (probe HEF_TRACE on first use),
// 1 = off, 2 = coarse, 3 = fine.
static LEVEL: AtomicU8 = AtomicU8::new(0);
// Bumped on every session start/finish; thread-local buffer handles are
// tagged with the generation they registered under and re-register when it
// moves, so sequential sessions in one process (tests!) work.
static GENERATION: AtomicU64 = AtomicU64::new(0);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process-wide trace epoch.
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Kind {
    Begin,
    End,
    Instant,
}

#[derive(Clone, Copy)]
struct Record {
    kind: Kind,
    name: &'static str,
    ts_ns: u64,
    nargs: u8,
    label_len: u8,
    label: [u8; LABEL_CAP],
    args: [(&'static str, i64); MAX_ARGS],
}

struct Sink {
    records: Vec<Record>,
    cap: usize,
    dropped: u64,
    drop_depth: u32,
}

struct ThreadBuf {
    tid: u32,
    name: Mutex<String>,
    sink: Mutex<Sink>,
}

struct Session {
    out: Option<PathBuf>,
    cap: usize,
    threads: Vec<Arc<ThreadBuf>>,
    next_tid: u32,
}

fn session() -> &'static Mutex<Option<Session>> {
    static S: OnceLock<Mutex<Option<Session>>> = OnceLock::new();
    S.get_or_init(|| Mutex::new(None))
}

thread_local! {
    static TLS: RefCell<Option<(u64, Arc<ThreadBuf>)>> = const { RefCell::new(None) };
}

#[inline]
fn raw_level() -> u8 {
    let l = LEVEL.load(Ordering::Relaxed);
    if l == 0 {
        init_from_env()
    } else {
        l
    }
}

/// True when tracing is active at coarse level or finer.
#[inline]
pub fn enabled() -> bool {
    raw_level() >= 2
}

/// True when tracing is active at fine (per-morsel) level.
#[inline]
pub fn enabled_fine() -> bool {
    raw_level() >= 3
}

#[cold]
fn init_from_env() -> u8 {
    let mut guard = session().lock().unwrap_or_else(|p| p.into_inner());
    // Double-check under the lock: another thread may have initialized.
    let l = LEVEL.load(Ordering::Relaxed);
    if l != 0 {
        return l;
    }
    match std::env::var("HEF_TRACE") {
        Ok(spec) if !spec.is_empty() => {
            let (path, level) = parse_spec(&spec);
            start_locked(&mut guard, Some(PathBuf::from(path)), level);
        }
        _ => LEVEL.store(1, Ordering::Relaxed),
    }
    LEVEL.load(Ordering::Relaxed)
}

/// Parse `HEF_TRACE=<file>[:level]`; level is `coarse`/`fine` (default fine).
fn parse_spec(spec: &str) -> (&str, Level) {
    if let Some((path, lvl)) = spec.rsplit_once(':') {
        match lvl {
            "coarse" | "1" => return (path, Level::Coarse),
            "fine" | "2" => return (path, Level::Fine),
            _ => {}
        }
    }
    (spec, Level::Fine)
}

fn start_locked(guard: &mut Option<Session>, out: Option<PathBuf>, level: Level) {
    epoch(); // pin the clock before any record can be stamped
    let cap = std::env::var("HEF_TRACE_BUF")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&c| c >= 16)
        .unwrap_or(DEFAULT_CAP);
    *guard = Some(Session {
        out,
        cap,
        threads: Vec::new(),
        next_tid: 0,
    });
    GENERATION.fetch_add(1, Ordering::Release);
    LEVEL.store(
        match level {
            Level::Off => 1,
            Level::Coarse => 2,
            Level::Fine => 3,
        },
        Ordering::Relaxed,
    );
}

/// Start an in-memory capture session (no output file). Used by tests and
/// the overhead bench; any prior session is discarded.
pub fn start_capture(level: Level) {
    let mut guard = session().lock().unwrap_or_else(|p| p.into_inner());
    start_locked(&mut guard, None, level);
}

/// Start a session that [`finish`] will write to `path` as Chrome JSON.
pub fn start_file(path: impl Into<PathBuf>, level: Level) {
    let mut guard = session().lock().unwrap_or_else(|p| p.into_inner());
    start_locked(&mut guard, Some(path.into()), level);
}

/// Result of draining a trace session.
pub struct TraceOutput {
    /// Chrome `trace_event` JSON document.
    pub json: String,
    /// Where the JSON was written, if the session had a file target.
    pub path: Option<PathBuf>,
    /// Number of events in the document.
    pub events: usize,
    /// Records dropped due to buffer saturation.
    pub dropped: u64,
}

/// Stop the active session, render Chrome JSON (writing it to the session's
/// file if one was configured), and return it. `None` if no session active.
pub fn finish() -> Option<TraceOutput> {
    let sess = {
        let mut guard = session().lock().unwrap_or_else(|p| p.into_inner());
        let sess = guard.take()?;
        LEVEL.store(1, Ordering::Relaxed);
        GENERATION.fetch_add(1, Ordering::Release);
        sess
    };
    let (json, events, dropped) = render_chrome_json(&sess);
    if let Some(p) = &sess.out {
        if let Err(e) = std::fs::write(p, &json) {
            crate::diag::warn(format!("trace: failed to write {}: {e}", p.display()));
        }
    }
    Some(TraceOutput {
        json,
        path: sess.out,
        events,
        dropped,
    })
}

/// Render the active session's current records to its output file *without*
/// ending the session: the live buffers are untouched and keep recording;
/// spans still open are auto-closed in the rendered copy only. This is the
/// drop-guard drain for queries that end in a typed error — the partial
/// trace lands on disk even though the process-level [`finish`] may be far
/// away (or never reached). Returns the event count written; `None` when no
/// session is active or it has no file target.
pub fn checkpoint() -> Option<usize> {
    let guard = session().lock().unwrap_or_else(|p| p.into_inner());
    let sess = guard.as_ref()?;
    let path = sess.out.as_ref()?;
    let (json, events, _) = render_chrome_json(sess);
    if let Err(e) = std::fs::write(path, &json) {
        crate::diag::warn(format!(
            "trace: checkpoint failed to write {}: {e}",
            path.display()
        ));
        return None;
    }
    Some(events)
}

/// Record kind handed to [`visit_records`] callbacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecKind {
    Begin,
    End,
    Instant,
}

/// Borrowed view of one buffered record, for streaming aggregation
/// ([`crate::profile`]) without rendering Chrome JSON.
pub struct RecordView<'a> {
    pub kind: RecKind,
    pub name: &'static str,
    /// Nanoseconds since the trace epoch.
    pub ts_ns: u64,
    /// Dynamic label (empty when none was recorded).
    pub label: &'a str,
    pub args: &'a [(&'static str, i64)],
}

/// Walk the active session's per-thread buffers in place: `thread` is called
/// once per registered thread with `(tid, name, dropped)`, then `rec` with
/// each of that thread's records in append order. The session stays active
/// and its buffers keep recording afterwards. Returns `false` when no
/// session is active.
pub fn visit_records(
    mut thread: impl FnMut(u32, &str, u64),
    mut rec: impl FnMut(u32, RecordView<'_>),
) -> bool {
    let guard = session().lock().unwrap_or_else(|p| p.into_inner());
    let Some(sess) = guard.as_ref() else {
        return false;
    };
    for buf in &sess.threads {
        let name = buf.name.lock().unwrap_or_else(|p| p.into_inner()).clone();
        let sink = buf.sink.lock().unwrap_or_else(|p| p.into_inner());
        thread(buf.tid, &name, sink.dropped);
        for r in &sink.records {
            let kind = match r.kind {
                Kind::Begin => RecKind::Begin,
                Kind::End => RecKind::End,
                Kind::Instant => RecKind::Instant,
            };
            let label =
                std::str::from_utf8(&r.label[..r.label_len as usize]).unwrap_or("<bad-utf8>");
            rec(
                buf.tid,
                RecordView {
                    kind,
                    name: r.name,
                    ts_ns: r.ts_ns,
                    label,
                    args: &r.args[..r.nargs as usize],
                },
            );
        }
    }
    true
}

/// Name the calling thread in the trace (e.g. `worker-3`). No-op when off.
pub fn set_thread_name(name: &str) {
    if !enabled() {
        return;
    }
    with_buf(|buf| {
        *buf.name.lock().unwrap_or_else(|p| p.into_inner()) = name.to_string();
    });
}

/// RAII guard closing a span on drop. Obtained from [`span_begin`] or the
/// `span!` / `span_fine!` macros.
pub struct SpanGuard {
    name: Option<&'static str>,
}

impl SpanGuard {
    /// A guard that records nothing — the disabled path of `span!`.
    #[inline]
    pub fn disabled() -> Self {
        SpanGuard { name: None }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(name) = self.name {
            // Re-check: the session may have finished while the span was
            // open; the renderer auto-closes, so skipping the End is safe.
            if enabled() {
                emit(Kind::End, name, "", &[]);
            }
        }
    }
}

/// Open a span. Prefer the `span!` macro, which skips argument evaluation
/// when tracing is off.
pub fn span_begin(name: &'static str, args: &[(&'static str, i64)]) -> SpanGuard {
    span_begin_labeled(name, "", args)
}

/// Open a span with a dynamic label (truncated to [`LABEL_CAP`] bytes).
pub fn span_begin_labeled(
    name: &'static str,
    label: &str,
    args: &[(&'static str, i64)],
) -> SpanGuard {
    if !enabled() {
        return SpanGuard::disabled();
    }
    emit(Kind::Begin, name, label, args);
    SpanGuard { name: Some(name) }
}

/// Record an instant event.
pub fn instant(name: &'static str, args: &[(&'static str, i64)]) {
    instant_labeled(name, "", args);
}

/// Record an instant event with a dynamic label.
pub fn instant_labeled(name: &'static str, label: &str, args: &[(&'static str, i64)]) {
    if !enabled() {
        return;
    }
    emit(Kind::Instant, name, label, args);
}

fn emit(kind: Kind, name: &'static str, label: &str, args: &[(&'static str, i64)]) {
    let ts_ns = now_ns();
    let mut rec = Record {
        kind,
        name,
        ts_ns,
        nargs: args.len().min(MAX_ARGS) as u8,
        label_len: 0,
        label: [0; LABEL_CAP],
        args: [("", 0); MAX_ARGS],
    };
    for (i, &(k, v)) in args.iter().take(MAX_ARGS).enumerate() {
        rec.args[i] = (k, v);
    }
    let lbl = label.as_bytes();
    let n = truncation_boundary(label, LABEL_CAP);
    rec.label[..n].copy_from_slice(&lbl[..n]);
    rec.label_len = n as u8;
    with_buf(|buf| push(buf, rec));
}

/// Largest prefix length ≤ `cap` that ends on a UTF-8 boundary.
fn truncation_boundary(s: &str, cap: usize) -> usize {
    if s.len() <= cap {
        return s.len();
    }
    let mut n = cap;
    while n > 0 && !s.is_char_boundary(n) {
        n -= 1;
    }
    n
}

fn with_buf(f: impl FnOnce(&ThreadBuf)) {
    TLS.with(|tls| {
        let mut slot = tls.borrow_mut();
        let current = GENERATION.load(Ordering::Acquire);
        let stale = !matches!(&*slot, Some((g, _)) if *g == current);
        if stale {
            let mut guard = session().lock().unwrap_or_else(|p| p.into_inner());
            let Some(sess) = guard.as_mut() else {
                *slot = None;
                return;
            };
            let tid = sess.next_tid;
            sess.next_tid += 1;
            let default_name = std::thread::current()
                .name()
                .map(str::to_string)
                .unwrap_or_else(|| format!("thread-{tid}"));
            let buf = Arc::new(ThreadBuf {
                tid,
                name: Mutex::new(default_name),
                sink: Mutex::new(Sink {
                    records: Vec::new(),
                    cap: sess.cap,
                    dropped: 0,
                    drop_depth: 0,
                }),
            });
            sess.threads.push(Arc::clone(&buf));
            // Tag with the generation read under the lock so a concurrent
            // finish/start pair forces re-registration next time.
            let gen_now = GENERATION.load(Ordering::Acquire);
            *slot = Some((gen_now, buf));
        }
        if let Some((_, buf)) = &*slot {
            f(buf);
        }
    });
}

fn push(buf: &ThreadBuf, rec: Record) {
    let mut s = buf.sink.lock().unwrap_or_else(|p| p.into_inner());
    if s.drop_depth > 0 {
        // Inside a dropped span: swallow everything, tracking nesting so the
        // matching End of the dropped Begin is also swallowed.
        match rec.kind {
            Kind::Begin => s.drop_depth += 1,
            Kind::End => s.drop_depth -= 1,
            Kind::Instant => {}
        }
        s.dropped += 1;
        return;
    }
    if s.records.len() >= s.cap {
        match rec.kind {
            Kind::Begin => {
                s.drop_depth = 1;
                s.dropped += 1;
            }
            // Ends of already-recorded Begins are always kept (bounded by
            // open-span depth) so the stream stays balanced.
            Kind::End => s.records.push(rec),
            Kind::Instant => s.dropped += 1,
        }
        return;
    }
    s.records.push(rec);
}

fn json_escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn render_chrome_json(sess: &Session) -> (String, usize, u64) {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"traceEvents\":[");
    let mut events = 0usize;
    let mut dropped = 0u64;
    let mut first = true;
    let mut push_ev = |out: &mut String, body: &str| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push_str(body);
    };
    let mut ev = String::new();
    for buf in &sess.threads {
        let tid = buf.tid;
        let name = buf.name.lock().unwrap_or_else(|p| p.into_inner()).clone();
        ev.clear();
        ev.push_str("{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":");
        let _ = write!(ev, "{tid}");
        ev.push_str(",\"args\":{\"name\":\"");
        json_escape_into(&mut ev, &name);
        ev.push_str("\"}}");
        push_ev(&mut out, &ev);
        events += 1;

        let sink = buf.sink.lock().unwrap_or_else(|p| p.into_inner());
        dropped += sink.dropped;
        let mut open: Vec<&'static str> = Vec::new();
        let mut max_ts = 0u64;
        for rec in &sink.records {
            max_ts = max_ts.max(rec.ts_ns);
            ev.clear();
            let ph = match rec.kind {
                Kind::Begin => "B",
                Kind::End => "E",
                Kind::Instant => "i",
            };
            let _ = write!(ev, "{{\"ph\":\"{ph}\",\"name\":\"");
            json_escape_into(&mut ev, rec.name);
            let ts_us = rec.ts_ns as f64 / 1000.0;
            let _ = write!(ev, "\",\"pid\":1,\"tid\":{tid},\"ts\":{ts_us:.3}");
            if rec.kind == Kind::Instant {
                ev.push_str(",\"s\":\"t\"");
            }
            let has_label = rec.label_len > 0;
            if (has_label || rec.nargs > 0) && rec.kind != Kind::End {
                ev.push_str(",\"args\":{");
                let mut first_arg = true;
                if has_label {
                    ev.push_str("\"label\":\"");
                    let lbl = std::str::from_utf8(&rec.label[..rec.label_len as usize])
                        .unwrap_or("<bad-utf8>");
                    json_escape_into(&mut ev, lbl);
                    ev.push('"');
                    first_arg = false;
                }
                for &(k, v) in rec.args.iter().take(rec.nargs as usize) {
                    if !std::mem::take(&mut first_arg) {
                        ev.push(',');
                    }
                    ev.push('"');
                    json_escape_into(&mut ev, k);
                    let _ = write!(ev, "\":{v}");
                }
                ev.push('}');
            }
            ev.push('}');
            push_ev(&mut out, &ev);
            events += 1;
            match rec.kind {
                Kind::Begin => open.push(rec.name),
                Kind::End => {
                    open.pop();
                }
                Kind::Instant => {}
            }
        }
        // Auto-close spans left open (e.g. finish() called mid-query) so the
        // document always validates.
        while let Some(name) = open.pop() {
            ev.clear();
            let _ = write!(ev, "{{\"ph\":\"E\",\"name\":\"");
            json_escape_into(&mut ev, name);
            let ts_us = max_ts as f64 / 1000.0;
            let _ = write!(ev, "\",\"pid\":1,\"tid\":{tid},\"ts\":{ts_us:.3}}}");
            push_ev(&mut out, &ev);
            events += 1;
        }
    }
    let _ = write!(
        out,
        "],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"dropped\":{dropped}}}}}"
    );
    (out, events, dropped)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Trace sessions are process-global; serialize the tests in this module.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static M: Mutex<()> = Mutex::new(());
        M.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn spec_parsing() {
        assert_eq!(parse_spec("out.json"), ("out.json", Level::Fine));
        assert_eq!(parse_spec("out.json:coarse"), ("out.json", Level::Coarse));
        assert_eq!(parse_spec("out.json:fine"), ("out.json", Level::Fine));
        assert_eq!(parse_spec("a:b.json"), ("a:b.json", Level::Fine));
    }

    #[test]
    fn capture_and_finish_roundtrip() {
        let _g = lock();
        start_capture(Level::Fine);
        set_thread_name("unit-test");
        {
            let _s = crate::span!("outer", n = 3);
            let _t = crate::span_fine!("inner");
            crate::event!("tick", v = 1);
        }
        let out = finish().expect("session active");
        assert!(out.json.contains("\"outer\""));
        assert!(out.json.contains("\"inner\""));
        assert!(out.json.contains("\"tick\""));
        assert!(out.json.contains("unit-test"));
        let report = crate::check::check_trace(&out.json).expect("valid trace");
        assert!(report.spans.iter().any(|s| s.name == "outer"));
        assert!(finish().is_none());
        assert!(!enabled());
    }

    #[test]
    fn coarse_level_skips_fine_spans() {
        let _g = lock();
        start_capture(Level::Coarse);
        {
            let _s = crate::span!("coarse_one");
            let _t = crate::span_fine!("fine_one");
        }
        let out = finish().unwrap();
        assert!(out.json.contains("coarse_one"));
        assert!(!out.json.contains("fine_one"));
    }

    #[test]
    fn saturation_keeps_stream_balanced_and_counts_drops() {
        let _g = lock();
        start_capture(Level::Fine);
        // Force a tiny cap directly on this thread's sink via many spans.
        // cap is DEFAULT_CAP here; emit past it cheaply with instants plus
        // spans to exercise the drop ladder.
        for i in 0..(DEFAULT_CAP + 100) {
            let _s = crate::span!("s", i = i);
        }
        let out = finish().unwrap();
        assert!(out.dropped > 0);
        crate::check::check_trace(&out.json).expect("balanced despite drops");
    }

    #[test]
    fn label_truncates_on_char_boundary() {
        let long = "é".repeat(LABEL_CAP); // 2 bytes each
        let n = truncation_boundary(&long, LABEL_CAP);
        assert!(n <= LABEL_CAP);
        assert!(long.is_char_boundary(n));
    }
}

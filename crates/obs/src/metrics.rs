//! Metrics registry: a fixed set of monotonic counters plus log2-bucket
//! histograms, all process-global atomics.
//!
//! The registry is deliberately *closed* (an enum, not string keys): adding a
//! counter is a code change, lookups are array indexing, and a snapshot is a
//! `memcpy`. Counters are only incremented when [`enabled`] — a relaxed
//! atomic load — says so, activated by `HEF_METRICS=1` or [`enable`].
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// Counter taxonomy. Grouped by subsystem; see DESIGN.md §8.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Metric {
    // Scheduler (engine::parallel)
    QueriesExecuted,
    MorselsClaimed,
    MorselsRetried,
    WorkersLost,
    SerialDegradations,
    // Kernels (engine::star / engine::voila)
    FilterRowsIn,
    FilterRowsOut,
    ProbeKeys,
    ProbeHits,
    BloomKeys,
    BloomDrops,
    AggRows,
    GatherRows,
    RowsMaterialized,
    /// Probe keys run through the software-prefetched (f > 0) pipeline.
    ProbePrefetchedKeys,
    /// Probe keys routed through a radix-partitioned table.
    ProbePartitionedKeys,
    /// Sub-table kernel invocations issued by partitioned probes.
    ProbeSubProbes,
    // Tuner (hef-core::optimizer)
    TunerSearches,
    TunerTrials,
    TunerRemeasurements,
    TunerPruned,
    // Cache/µarch simulator usage (hef-core::optimizer::SimulatedCost)
    SimRuns,
    SimCycles,
    // Registry degradation (hef-core::registry)
    RegistryLoads,
    RegistryLinesDropped,
    RegistryFallbacks,
    RegistryStaleIsa,
    // Storage (hef-storage::file)
    ColumnFilesLoaded,
    ColumnRowsSalvaged,
    StorageIssues,
    // Paged storage (hef-storage::page / hef-storage::cache)
    /// Page lookups satisfied by the shared page cache.
    PageCacheHits,
    /// Page lookups that had to read + decode from disk.
    PageCacheMisses,
    /// Pages evicted by the clock hand to stay under `HEF_PAGE_CACHE`.
    PageCacheEvictions,
    /// Compressed pages decoded (bit-unpack + FOR/dict).
    PagesDecoded,
    /// Rows produced by the decode kernel family.
    DecodeRows,
    /// Rows whose first filter was evaluated in dictionary code space
    /// (no value gather needed for misses).
    DecodeCodeFiltered,
    // Cross-cutting
    FaultsInjected,
    DiagWarnings,
    // Query lifecycle governance (engine::govern)
    GovAdmitted,
    GovRejected,
    GovDegradations,
    GovCancelled,
    GovDeadlineExceeded,
    GovBackoffRetries,
    GovBytesCharged,
    // Plan optimizer (engine::plan::optimize)
    /// Predicates pushed below a join by the plan optimizer.
    PlanPushdownApplied,
    /// Plans whose join order the optimizer changed.
    PlanJoinsReordered,
    /// Scan columns pruned by projection analysis.
    PlanProjectionsPruned,
}

impl Metric {
    pub const ALL: [Metric; 48] = [
        Metric::QueriesExecuted,
        Metric::MorselsClaimed,
        Metric::MorselsRetried,
        Metric::WorkersLost,
        Metric::SerialDegradations,
        Metric::FilterRowsIn,
        Metric::FilterRowsOut,
        Metric::ProbeKeys,
        Metric::ProbeHits,
        Metric::BloomKeys,
        Metric::BloomDrops,
        Metric::AggRows,
        Metric::GatherRows,
        Metric::RowsMaterialized,
        Metric::ProbePrefetchedKeys,
        Metric::ProbePartitionedKeys,
        Metric::ProbeSubProbes,
        Metric::TunerSearches,
        Metric::TunerTrials,
        Metric::TunerRemeasurements,
        Metric::TunerPruned,
        Metric::SimRuns,
        Metric::SimCycles,
        Metric::RegistryLoads,
        Metric::RegistryLinesDropped,
        Metric::RegistryFallbacks,
        Metric::RegistryStaleIsa,
        Metric::ColumnFilesLoaded,
        Metric::ColumnRowsSalvaged,
        Metric::StorageIssues,
        Metric::PageCacheHits,
        Metric::PageCacheMisses,
        Metric::PageCacheEvictions,
        Metric::PagesDecoded,
        Metric::DecodeRows,
        Metric::DecodeCodeFiltered,
        Metric::FaultsInjected,
        Metric::DiagWarnings,
        Metric::GovAdmitted,
        Metric::GovRejected,
        Metric::GovDegradations,
        Metric::GovCancelled,
        Metric::GovDeadlineExceeded,
        Metric::GovBackoffRetries,
        Metric::GovBytesCharged,
        Metric::PlanPushdownApplied,
        Metric::PlanJoinsReordered,
        Metric::PlanProjectionsPruned,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Metric::QueriesExecuted => "scheduler.queries_executed",
            Metric::MorselsClaimed => "scheduler.morsels_claimed",
            Metric::MorselsRetried => "scheduler.morsels_retried",
            Metric::WorkersLost => "scheduler.workers_lost",
            Metric::SerialDegradations => "scheduler.serial_degradations",
            Metric::FilterRowsIn => "kernel.filter_rows_in",
            Metric::FilterRowsOut => "kernel.filter_rows_out",
            Metric::ProbeKeys => "kernel.probe_keys",
            Metric::ProbeHits => "kernel.probe_hits",
            Metric::BloomKeys => "kernel.bloom_keys",
            Metric::BloomDrops => "kernel.bloom_drops",
            Metric::AggRows => "kernel.agg_rows",
            Metric::GatherRows => "kernel.gather_rows",
            Metric::RowsMaterialized => "kernel.rows_materialized",
            Metric::ProbePrefetchedKeys => "kernel.probe_prefetched_keys",
            Metric::ProbePartitionedKeys => "kernel.probe_partitioned_keys",
            Metric::ProbeSubProbes => "kernel.probe_sub_probes",
            Metric::TunerSearches => "tuner.searches",
            Metric::TunerTrials => "tuner.trials",
            Metric::TunerRemeasurements => "tuner.remeasurements",
            Metric::TunerPruned => "tuner.pruned",
            Metric::SimRuns => "sim.runs",
            Metric::SimCycles => "sim.cycles",
            Metric::RegistryLoads => "registry.loads",
            Metric::RegistryLinesDropped => "registry.lines_dropped",
            Metric::RegistryFallbacks => "registry.fallbacks",
            Metric::RegistryStaleIsa => "registry.stale_isa",
            Metric::ColumnFilesLoaded => "storage.column_files_loaded",
            Metric::ColumnRowsSalvaged => "storage.column_rows_salvaged",
            Metric::StorageIssues => "storage.issues",
            Metric::PageCacheHits => "storage.page_cache_hits",
            Metric::PageCacheMisses => "storage.page_cache_misses",
            Metric::PageCacheEvictions => "storage.page_cache_evictions",
            Metric::PagesDecoded => "storage.pages_decoded",
            Metric::DecodeRows => "kernel.decode_rows",
            Metric::DecodeCodeFiltered => "kernel.decode_code_filtered",
            Metric::FaultsInjected => "fault.injected",
            Metric::DiagWarnings => "diag.warnings",
            Metric::GovAdmitted => "govern.admitted",
            Metric::GovRejected => "govern.rejected",
            Metric::GovDegradations => "govern.degradations",
            Metric::GovCancelled => "govern.cancelled",
            Metric::GovDeadlineExceeded => "govern.deadline_exceeded",
            Metric::GovBackoffRetries => "govern.backoff_retries",
            Metric::GovBytesCharged => "govern.bytes_charged",
            Metric::PlanPushdownApplied => "plan.pushdown_applied",
            Metric::PlanJoinsReordered => "plan.joins_reordered",
            Metric::PlanProjectionsPruned => "plan.projections_pruned",
        }
    }
}

const N_METRICS: usize = Metric::ALL.len();

/// Log2-bucket histograms. Bucket 0 holds value 0; bucket `i` (1..=16)
/// holds values in `[2^(i-1), 2^i)`, saturating at the top.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Hist {
    /// Rows surviving the filter stage, per batch.
    FilterBatchRowsOut,
    /// Hash-probe hits per batch.
    ProbeBatchHits,
    /// Rows per claimed morsel.
    MorselRows,
    /// Wall-clock microseconds per executed morsel.
    MorselLatencyUs,
    /// Microseconds a query spent in admission backoff before running.
    AdmissionWaitUs,
    /// Milliseconds left on the deadline when a deadlined query succeeded.
    DeadlineSlackMs,
    /// Hardware cycles per row of a measured tuner trial.
    KernelCyclesPerRow,
    /// Tuner calibration drift: measured/predicted cost ratio, in permille
    /// (1000 = the port simulator priced this node exactly right).
    TunerDriftPermille,
}

impl Hist {
    pub const ALL: [Hist; 8] = [
        Hist::FilterBatchRowsOut,
        Hist::ProbeBatchHits,
        Hist::MorselRows,
        Hist::MorselLatencyUs,
        Hist::AdmissionWaitUs,
        Hist::DeadlineSlackMs,
        Hist::KernelCyclesPerRow,
        Hist::TunerDriftPermille,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Hist::FilterBatchRowsOut => "kernel.filter_batch_rows_out",
            Hist::ProbeBatchHits => "kernel.probe_batch_hits",
            Hist::MorselRows => "scheduler.morsel_rows",
            Hist::MorselLatencyUs => "scheduler.morsel_latency_us",
            Hist::AdmissionWaitUs => "govern.admission_wait_us",
            Hist::DeadlineSlackMs => "govern.deadline_slack_ms",
            Hist::KernelCyclesPerRow => "kernel.cycles_per_row",
            Hist::TunerDriftPermille => "tuner.drift",
        }
    }
}

const N_HISTS: usize = Hist::ALL.len();
/// Buckets per histogram: {0} ∪ 16 log2 ranges.
pub const HIST_BUCKETS: usize = 17;

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
#[allow(clippy::declare_interior_mutable_const)]
const ZERO_ROW: [AtomicU64; HIST_BUCKETS] = [ZERO; HIST_BUCKETS];
static COUNTERS: [AtomicU64; N_METRICS] = [ZERO; N_METRICS];
static HISTS: [[AtomicU64; HIST_BUCKETS]; N_HISTS] = [ZERO_ROW; N_HISTS];

// 0 = uninitialized (probe HEF_METRICS on first use), 1 = off, 2 = on.
static STATE: AtomicU8 = AtomicU8::new(0);

#[inline]
fn state() -> u8 {
    let s = STATE.load(Ordering::Relaxed);
    if s == 0 {
        init_from_env()
    } else {
        s
    }
}

#[cold]
fn init_from_env() -> u8 {
    let on = matches!(
        std::env::var("HEF_METRICS").as_deref(),
        Ok("1") | Ok("true") | Ok("on")
    );
    let v = if on { 2 } else { 1 };
    // Racy double-init is fine: both writers agree on the env-derived value,
    // and explicit enable()/disable() calls always win by storing later.
    STATE.store(v, Ordering::Relaxed);
    v
}

/// True when the metrics registry is recording.
#[inline]
pub fn enabled() -> bool {
    state() == 2
}

/// Programmatically turn metrics on (tests, `repro`).
pub fn enable() {
    STATE.store(2, Ordering::Relaxed);
}

/// Programmatically turn metrics off.
pub fn disable() {
    STATE.store(1, Ordering::Relaxed);
}

/// Add `n` to a counter. One relaxed load + branch when disabled.
#[inline]
pub fn add(m: Metric, n: u64) {
    if enabled() {
        COUNTERS[m as usize].fetch_add(n, Ordering::Relaxed);
    }
}

#[inline]
fn bucket(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros() as usize).min(HIST_BUCKETS - 1)
    }
}

/// Record one observation into a histogram.
#[inline]
pub fn observe(h: Hist, v: u64) {
    if enabled() {
        HISTS[h as usize][bucket(v)].fetch_add(1, Ordering::Relaxed);
    }
}

/// Representative value of bucket `i`: 0 for the zero bucket, the geometric
/// midpoint of `[2^(i-1), 2^i)` for interior buckets, and the lower edge for
/// the saturating top bucket (whose true upper edge is unbounded).
pub fn bucket_value(i: usize) -> f64 {
    if i == 0 {
        0.0
    } else if i == HIST_BUCKETS - 1 {
        (1u64 << (i - 1)) as f64
    } else {
        (1u64 << (i - 1)) as f64 * std::f64::consts::SQRT_2
    }
}

/// Percentile estimate (`0 < p <= 100`) from log2 buckets: the representative
/// value of the first bucket whose cumulative count reaches the rank.
/// `None` when the histogram is empty.
pub fn percentile(buckets: &[u64; HIST_BUCKETS], p: f64) -> Option<f64> {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return None;
    }
    let rank = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
    let mut cum = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        cum += c;
        if cum >= rank {
            return Some(bucket_value(i));
        }
    }
    Some(bucket_value(HIST_BUCKETS - 1))
}

/// A point-in-time copy of every counter and histogram.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Snapshot {
    pub counters: [u64; N_METRICS],
    pub hists: [[u64; HIST_BUCKETS]; N_HISTS],
}

/// Capture the current values of all counters and histograms.
pub fn snapshot() -> Snapshot {
    let mut counters = [0u64; N_METRICS];
    for (dst, src) in counters.iter_mut().zip(COUNTERS.iter()) {
        *dst = src.load(Ordering::Relaxed);
    }
    let mut hists = [[0u64; HIST_BUCKETS]; N_HISTS];
    for (dst, src) in hists.iter_mut().zip(HISTS.iter()) {
        for (d, s) in dst.iter_mut().zip(src.iter()) {
            *d = s.load(Ordering::Relaxed);
        }
    }
    Snapshot { counters, hists }
}

impl Snapshot {
    /// Counter value for `m`.
    pub fn get(&self, m: Metric) -> u64 {
        self.counters[m as usize]
    }

    /// Histogram buckets for `h`.
    pub fn hist(&self, h: Hist) -> &[u64; HIST_BUCKETS] {
        &self.hists[h as usize]
    }

    /// `(p50, p95, p99)` estimates for `h`; `None` when it has no samples.
    pub fn percentiles(&self, h: Hist) -> Option<(f64, f64, f64)> {
        let b = self.hist(h);
        Some((
            percentile(b, 50.0)?,
            percentile(b, 95.0)?,
            percentile(b, 99.0)?,
        ))
    }

    /// Per-counter / per-bucket difference `self - earlier` (saturating).
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let mut out = self.clone();
        for (d, e) in out.counters.iter_mut().zip(earlier.counters.iter()) {
            *d = d.saturating_sub(*e);
        }
        for (dh, eh) in out.hists.iter_mut().zip(earlier.hists.iter()) {
            for (d, e) in dh.iter_mut().zip(eh.iter()) {
                *d = d.saturating_sub(*e);
            }
        }
        out
    }

    /// Plain-text summary listing only non-zero counters/histograms.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let width = Metric::ALL
            .iter()
            .filter(|&&m| self.get(m) > 0)
            .map(|m| m.name().len())
            .max()
            .unwrap_or(0);
        for &m in Metric::ALL.iter() {
            let v = self.get(m);
            if v > 0 {
                let _ = writeln!(out, "{:width$}  {v}", m.name());
            }
        }
        for &h in Hist::ALL.iter() {
            let b = self.hist(h);
            if b.iter().any(|&c| c > 0) {
                let n: u64 = b.iter().sum();
                match self.percentiles(h) {
                    Some((p50, p95, p99)) => {
                        let _ = writeln!(
                            out,
                            "{}: n={n} p50={p50:.0} p95={p95:.0} p99={p99:.0}",
                            h.name()
                        );
                    }
                    None => {
                        let _ = writeln!(out, "{}:", h.name());
                    }
                }
                for (i, &c) in b.iter().enumerate() {
                    if c > 0 {
                        let range = if i == 0 {
                            "        0".to_string()
                        } else {
                            format!("{:>4}..{:<4}", 1u64 << (i - 1), 1u64 << i)
                        };
                        let _ = writeln!(out, "  {range}  {c}");
                    }
                }
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }
}

/// Print a summary to stderr when metrics are enabled. Binaries call this at
/// exit so `HEF_METRICS=1` has a visible effect.
pub fn report_if_enabled() {
    if enabled() {
        eprintln!("--- hef metrics ---\n{}", snapshot().render());
        dump_now();
    }
}

/// Minimum interval between [`maybe_dump`] appends.
const DUMP_INTERVAL_NS: u64 = 1_000_000_000;
static LAST_DUMP_NS: AtomicU64 = AtomicU64::new(0);

fn dump_target() -> Option<&'static std::path::PathBuf> {
    use std::sync::OnceLock;
    static TARGET: OnceLock<Option<std::path::PathBuf>> = OnceLock::new();
    TARGET
        .get_or_init(|| {
            std::env::var("HEF_METRICS_DUMP")
                .ok()
                .filter(|p| !p.is_empty())
                .map(std::path::PathBuf::from)
        })
        .as_ref()
}

/// One JSONL record of the full registry state: timestamp, every non-zero
/// counter, and every non-empty histogram with its buckets and percentiles.
pub fn dump_line(snap: &Snapshot) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(256);
    let _ = write!(out, "{{\"ts_ns\":{}", crate::trace::now_ns());
    out.push_str(",\"counters\":{");
    let mut first = true;
    for &m in Metric::ALL.iter() {
        let v = snap.get(m);
        if v > 0 {
            if !std::mem::take(&mut first) {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", m.name());
        }
    }
    out.push_str("},\"hists\":{");
    let mut first = true;
    for &h in Hist::ALL.iter() {
        let b = snap.hist(h);
        if b.iter().all(|&c| c == 0) {
            continue;
        }
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{{\"buckets\":[", h.name());
        for (i, &c) in b.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{c}");
        }
        out.push(']');
        if let Some((p50, p95, p99)) = snap.percentiles(h) {
            let _ = write!(out, ",\"p50\":{p50:.1},\"p95\":{p95:.1},\"p99\":{p99:.1}");
        }
        out.push('}');
    }
    out.push_str("}}\n");
    out
}

/// Append one snapshot line to the `HEF_METRICS_DUMP` file right now.
/// Returns whether a line was written (false when disabled or no target).
pub fn dump_now() -> bool {
    if !enabled() {
        return false;
    }
    let Some(path) = dump_target() else {
        return false;
    };
    let line = dump_line(&snapshot());
    let res = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, line.as_bytes()));
    if let Err(e) = res {
        crate::diag::warn_once(
            "metrics_dump_write",
            format!("metrics: failed to append {}: {e}", path.display()),
        );
        return false;
    }
    LAST_DUMP_NS.store(crate::trace::now_ns(), Ordering::Relaxed);
    true
}

/// Rate-limited [`dump_now`]: appends at most once per second. The engine
/// calls this at query completion so long-running governed workloads leave
/// a periodic JSONL record without per-query file traffic.
pub fn maybe_dump() {
    if !enabled() || dump_target().is_none() {
        return;
    }
    let now = crate::trace::now_ns();
    let last = LAST_DUMP_NS.load(Ordering::Relaxed);
    if now.saturating_sub(last) < DUMP_INTERVAL_NS {
        return;
    }
    // One writer wins the interval; losers skip (best-effort cadence).
    if LAST_DUMP_NS
        .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
        .is_ok()
    {
        dump_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // enable()/disable() are process-global; serialize the tests that flip them.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static M: std::sync::Mutex<()> = std::sync::Mutex::new(());
        M.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket(0), 0);
        assert_eq!(bucket(1), 1);
        assert_eq!(bucket(2), 2);
        assert_eq!(bucket(3), 2);
        assert_eq!(bucket(4), 3);
        assert_eq!(bucket(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn add_and_snapshot_delta() {
        let _g = lock();
        enable();
        let before = snapshot();
        add(Metric::TunerTrials, 5);
        observe(Hist::MorselRows, 1024);
        let d = snapshot().delta(&before);
        assert!(d.get(Metric::TunerTrials) >= 5);
        assert!(d.hist(Hist::MorselRows)[bucket(1024)] >= 1);
        let text = d.render();
        assert!(text.contains("tuner.trials"));
        assert!(text.contains("scheduler.morsel_rows"));
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = lock();
        disable();
        let before = snapshot();
        add(Metric::ProbeKeys, 100);
        observe(Hist::ProbeBatchHits, 7);
        let d = snapshot().delta(&before);
        assert_eq!(d.get(Metric::ProbeKeys), 0);
        assert!(d.hist(Hist::ProbeBatchHits).iter().all(|&c| c == 0));
        enable();
    }

    #[test]
    fn metric_names_unique() {
        let mut names: Vec<_> = Metric::ALL.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Metric::ALL.len());
    }

    #[test]
    fn hist_names_unique() {
        let mut names: Vec<_> = Hist::ALL.iter().map(|h| h.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Hist::ALL.len());
    }

    #[test]
    fn percentile_empty_histogram_is_none() {
        let b = [0u64; HIST_BUCKETS];
        assert_eq!(percentile(&b, 50.0), None);
    }

    #[test]
    fn percentile_all_zero_values() {
        // Every sample in the zero bucket: all percentiles are exactly 0.
        let mut b = [0u64; HIST_BUCKETS];
        b[0] = 1000;
        assert_eq!(percentile(&b, 50.0), Some(0.0));
        assert_eq!(percentile(&b, 99.0), Some(0.0));
    }

    #[test]
    fn percentile_log2_bucket_edges() {
        // Values 1 (bucket 1) and 2..=3 (bucket 2): p50 of {1, 3} samples.
        let mut b = [0u64; HIST_BUCKETS];
        b[bucket(1)] += 1;
        b[bucket(3)] += 1;
        // rank(50%) = 1 → bucket 1's representative, inside [1, 2).
        assert_eq!(percentile(&b, 50.0), Some(bucket_value(1)));
        assert!((1.0..2.0).contains(&bucket_value(1)));
        assert_eq!(percentile(&b, 99.0), Some(bucket_value(2)));
        // An interior representative sits inside its bucket's range.
        let v = bucket_value(2);
        assert!((2.0..4.0).contains(&v), "bucket 2 midpoint {v}");
    }

    #[test]
    fn percentile_saturated_top_bucket() {
        // u64::MAX lands in the saturating top bucket; the representative is
        // the bucket's lower edge (the true range is unbounded above).
        let mut b = [0u64; HIST_BUCKETS];
        b[bucket(u64::MAX)] += 4;
        let top = bucket_value(HIST_BUCKETS - 1);
        assert_eq!(percentile(&b, 50.0), Some(top));
        assert_eq!(percentile(&b, 99.0), Some(top));
        assert_eq!(top, (1u64 << (HIST_BUCKETS - 2)) as f64);
    }

    #[test]
    fn percentile_rank_splits_two_buckets() {
        // 99 samples at 0, 1 sample high: p50 → 0, p99 → 0, p99.5+ → high.
        let mut b = [0u64; HIST_BUCKETS];
        b[0] = 99;
        b[bucket(1024)] = 1;
        assert_eq!(percentile(&b, 50.0), Some(0.0));
        assert_eq!(percentile(&b, 99.0), Some(0.0));
        assert_eq!(percentile(&b, 100.0), Some(bucket_value(bucket(1024))));
    }

    #[test]
    fn snapshot_percentiles_and_dump_line() {
        let _g = lock();
        enable();
        let before = snapshot();
        for _ in 0..100 {
            observe(Hist::MorselLatencyUs, 100);
        }
        observe(Hist::MorselLatencyUs, 100_000);
        let d = snapshot().delta(&before);
        let (p50, p95, p99) = d.percentiles(Hist::MorselLatencyUs).expect("samples");
        assert!((64.0..128.0).contains(&p50), "p50 {p50}");
        assert!(p99 >= p95 && p95 >= p50);
        let line = dump_line(&d);
        assert!(line.ends_with("}}\n"));
        assert!(line.contains("\"scheduler.morsel_latency_us\""));
        // The exporter emits strict JSON: the in-tree parser must accept it.
        crate::check::parse_json(line.trim_end()).expect("dump line parses");
    }
}

//! `hef-obs` — zero-dependency observability for the hybrid execution framework.
//!
//! Three cooperating pieces, all hermetic (no third-party crates):
//!
//! * [`trace`] — a lock-light span/event API writing fixed-size records into
//!   per-thread buffers stamped against a global epoch clock. Drained into
//!   Chrome `trace_event` JSON (loadable in `chrome://tracing` / Perfetto)
//!   plus a plain-text summary. Activated by `HEF_TRACE=<file>[:level]` or
//!   programmatically ([`trace::start_capture`] / [`trace::start_file`]).
//! * [`metrics`] — a fixed registry of monotonic counters and log2-bucket
//!   histograms covering the scheduler, kernels, tuner, registry, storage,
//!   and fault hooks. Activated by `HEF_METRICS=1` or [`metrics::enable`].
//! * [`diag`] — the single warning sink. Everything that used to
//!   `eprintln!` a warning routes through here so tests can capture and
//!   assert diagnostics ([`diag::capture`]).
//! * [`profile`] — streaming self-time aggregation of the active trace
//!   session into a bounded [`profile::ProfileTree`], rendered as an
//!   in-terminal flamegraph / top-N table (`repro flame`).
//!
//! The disabled path of every instrumentation site is one branch on a
//! relaxed atomic load — verified by `benches/obs_overhead.rs` in
//! `hef-bench`. When tracing/metrics are off the record structs are never
//! constructed and macro arguments are never evaluated.

pub mod check;
pub mod diag;
pub mod metrics;
pub mod profile;
pub mod trace;

pub use check::{check_trace, Json, SpanRec, TraceReport};
pub use metrics::{Hist, Metric, Snapshot};
pub use profile::{ProfileBuilder, ProfileNode, ProfileTree, ThreadProfile};
pub use trace::{Level, SpanGuard, TraceOutput};

/// Open a coarse-level span that ends when the returned guard drops.
///
/// Arguments after the name are `key = integer-expression` pairs recorded on
/// the span; they are **not evaluated** when tracing is disabled.
///
/// ```
/// let _s = hef_obs::span!("translate", v = 8, s = 2, p = 4);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr $(, $k:ident = $v:expr)* $(,)?) => {
        if $crate::trace::enabled() {
            $crate::trace::span_begin($name, &[$((stringify!($k), ($v) as i64)),*])
        } else {
            $crate::trace::SpanGuard::disabled()
        }
    };
}

/// Like [`span!`] but only recorded at `fine` trace level (per-morsel /
/// per-call granularity). Disabled-path cost is identical: one relaxed load.
#[macro_export]
macro_rules! span_fine {
    ($name:expr $(, $k:ident = $v:expr)* $(,)?) => {
        if $crate::trace::enabled_fine() {
            $crate::trace::span_begin($name, &[$((stringify!($k), ($v) as i64)),*])
        } else {
            $crate::trace::SpanGuard::disabled()
        }
    };
}

/// Record an instant (zero-duration) event at coarse level.
#[macro_export]
macro_rules! event {
    ($name:expr $(, $k:ident = $v:expr)* $(,)?) => {
        if $crate::trace::enabled() {
            $crate::trace::instant($name, &[$((stringify!($k), ($v) as i64)),*]);
        }
    };
}

//! The single diagnostics sink.
//!
//! All warning-class output (`resolve_threads` clamping, registry
//! degradation, fault-spec problems, storage salvage) funnels through
//! [`warn`] / [`warn_once`]. By default a warning goes to stderr prefixed
//! `warning: hef:`; under [`capture`] it is collected instead, so tests can
//! assert on exact diagnostics without scraping the process's stderr.
//! Every warning also bumps `Metric::DiagWarnings` and, when tracing is
//! active, records an instant event named `diag`.
use std::collections::HashSet;
use std::sync::{Mutex, MutexGuard, OnceLock};

fn capture_slot() -> &'static Mutex<Option<Vec<String>>> {
    static S: OnceLock<Mutex<Option<Vec<String>>>> = OnceLock::new();
    S.get_or_init(|| Mutex::new(None))
}

fn once_keys() -> &'static Mutex<HashSet<&'static str>> {
    static S: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    S.get_or_init(|| Mutex::new(HashSet::new()))
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Emit a warning through the sink.
pub fn warn(msg: impl std::fmt::Display) {
    let text = msg.to_string();
    crate::metrics::add(crate::metrics::Metric::DiagWarnings, 1);
    crate::trace::instant_labeled("diag", &text, &[]);
    let mut slot = lock(capture_slot());
    match slot.as_mut() {
        Some(buf) => buf.push(text),
        None => eprintln!("warning: hef: {text}"),
    }
}

/// Emit a warning at most once per process per `key`.
///
/// [`capture`] resets the once-set on entry so tests can observe warnings
/// that already fired earlier in the process.
pub fn warn_once(key: &'static str, msg: impl std::fmt::Display) {
    if lock(once_keys()).insert(key) {
        warn(msg);
    }
}

/// Run `f` with warnings captured instead of printed; returns `f`'s result
/// and the captured warnings, oldest first.
///
/// Captures are process-global, so concurrent calls are serialized by an
/// internal mutex, and `warn_once` keys are cleared on entry (capture is a
/// test-only facility; re-arming once-warnings is the useful behavior).
pub fn capture<R>(f: impl FnOnce() -> R) -> (R, Vec<String>) {
    static GUARD: Mutex<()> = Mutex::new(());
    let _g = GUARD.lock().unwrap_or_else(|p| p.into_inner());
    lock(once_keys()).clear();
    *lock(capture_slot()) = None; // discard any stale buffer from a panicked capture
    *lock(capture_slot()) = Some(Vec::new());
    // Restore the pass-through sink even if `f` panics.
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            *lock(capture_slot()) = None;
        }
    }
    let restore = Restore;
    let r = f();
    let captured = lock(capture_slot()).take().unwrap_or_default();
    std::mem::forget(restore);
    (r, captured)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_collects_instead_of_printing() {
        let ((), msgs) = capture(|| {
            warn("first thing");
            warn(format!("second {}", 2));
        });
        assert_eq!(msgs, vec!["first thing".to_string(), "second 2".to_string()]);
    }

    #[test]
    fn warn_once_fires_once_but_rearms_under_capture() {
        let ((), a) = capture(|| {
            warn_once("test-key", "hello");
            warn_once("test-key", "hello again");
        });
        assert_eq!(a, vec!["hello".to_string()]);
        // A new capture re-arms the key.
        let ((), b) = capture(|| warn_once("test-key", "back"));
        assert_eq!(b, vec!["back".to_string()]);
    }

    #[test]
    fn capture_restores_on_panic() {
        let res = std::panic::catch_unwind(|| {
            capture(|| -> () { panic!("boom") });
        });
        assert!(res.is_err());
        // Sink must be pass-through again; a fresh capture still works.
        let ((), msgs) = capture(|| warn("after panic"));
        assert_eq!(msgs, vec!["after panic".to_string()]);
    }
}

//! In-tree Chrome-trace checker: a minimal JSON parser plus structural
//! validation of `trace_event` documents (balanced B/E nesting per thread,
//! monotonic span intervals, known phase codes).
//!
//! Used by `repro report`, the verify.sh trace smoke stage, and the
//! round-trip tests. Deliberately small: it parses only what the trace
//! writer emits plus enough generality to catch malformed output.

use std::collections::BTreeMap;

/// A parsed JSON value. Object keys keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(kv) => kv.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("json parse error at byte {}: {msg}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected byte 0x{c:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut kv = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(kv));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            kv.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(kv));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        if self.peek() != Some(b'"') {
            return Err(self.err("expected string"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(b) => {
                    // Multi-byte scalar: decode just this character.
                    let len = match b {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        0xf0..=0xf7 => 4,
                        _ => return Err(self.err("invalid utf-8 in string")),
                    };
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .ok_or_else(|| self.err("truncated utf-8 in string"))?;
                    let s = std::str::from_utf8(chunk)
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    out.push_str(s);
                    self.pos += len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(&format!("bad number '{text}'")))
    }
}

/// Parse a JSON document. The whole input must be consumed.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage after document"));
    }
    Ok(v)
}

/// A completed span reconstructed from a B/E pair.
#[derive(Debug, Clone)]
pub struct SpanRec {
    pub tid: u64,
    pub name: String,
    /// Begin timestamp, microseconds since trace epoch.
    pub ts_us: f64,
    pub dur_us: f64,
    /// Nesting depth at begin time (0 = top-level on its thread).
    pub depth: usize,
}

/// Structural summary of a validated trace.
#[derive(Debug, Default)]
pub struct TraceReport {
    pub events: usize,
    pub spans: Vec<SpanRec>,
    /// `(tid, name, ts_us)` instant events.
    pub instants: Vec<(u64, String, f64)>,
    /// Thread names from `thread_name` metadata events.
    pub thread_names: BTreeMap<u64, String>,
    /// Dropped-record count reported by the writer, if present.
    pub dropped: u64,
}

impl TraceReport {
    /// Spans with the given name.
    pub fn spans_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a SpanRec> {
        self.spans.iter().filter(move |s| s.name == name)
    }
}

/// Validate a Chrome `trace_event` document and summarize it.
///
/// Checks: parseable JSON, a `traceEvents` array, every event has a known
/// phase, B/E events balance per thread with matching names and
/// non-decreasing timestamps.
pub fn check_trace(text: &str) -> Result<TraceReport, String> {
    let doc = parse_json(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing traceEvents array")?;
    let mut report = TraceReport {
        events: events.len(),
        ..TraceReport::default()
    };
    if let Some(d) = doc
        .get("otherData")
        .and_then(|o| o.get("dropped"))
        .and_then(Json::as_f64)
    {
        report.dropped = d as u64;
    }
    // Per-tid stack of open spans: (name, begin ts).
    let mut stacks: BTreeMap<u64, Vec<(String, f64)>> = BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing name"))?
            .to_string();
        let tid = ev.get("tid").and_then(Json::as_f64).unwrap_or(0.0) as u64;
        match ph {
            "M" => {
                if name == "thread_name" {
                    if let Some(n) = ev
                        .get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Json::as_str)
                    {
                        report.thread_names.insert(tid, n.to_string());
                    }
                }
            }
            "B" => {
                let ts = ev
                    .get("ts")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("event {i}: B without ts"))?;
                stacks.entry(tid).or_default().push((name, ts));
            }
            "E" => {
                let ts = ev
                    .get("ts")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("event {i}: E without ts"))?;
                let stack = stacks.entry(tid).or_default();
                let Some((open_name, begin_ts)) = stack.pop() else {
                    return Err(format!("event {i}: E '{name}' on tid {tid} with no open span"));
                };
                if open_name != name {
                    return Err(format!(
                        "event {i}: E '{name}' does not match open span '{open_name}' on tid {tid}"
                    ));
                }
                if ts + 1e-9 < begin_ts {
                    return Err(format!(
                        "event {i}: span '{name}' on tid {tid} ends ({ts}) before it begins ({begin_ts})"
                    ));
                }
                report.spans.push(SpanRec {
                    tid,
                    name,
                    ts_us: begin_ts,
                    dur_us: ts - begin_ts,
                    depth: stack.len(),
                });
            }
            "i" | "I" => {
                let ts = ev.get("ts").and_then(Json::as_f64).unwrap_or(0.0);
                report.instants.push((tid, name, ts));
            }
            "C" | "X" => {} // counters / complete events: tolerated, not emitted by us
            other => return Err(format!("event {i}: unknown phase '{other}'")),
        }
    }
    for (tid, stack) in &stacks {
        if let Some((name, _)) = stack.last() {
            return Err(format!("unclosed span '{name}' on tid {tid}"));
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let j = parse_json(r#"{"a":[1,2.5,-3e2],"b":"xA\n","c":true,"d":null}"#).unwrap();
        assert_eq!(j.get("a").unwrap().as_arr().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(j.get("b").unwrap().as_str(), Some("xA\n"));
        assert_eq!(j.get("c"), Some(&Json::Bool(true)));
        assert_eq!(j.get("d"), Some(&Json::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{}extra").is_err());
        assert!(parse_json(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn checker_accepts_balanced_trace() {
        let t = r#"{"traceEvents":[
            {"ph":"M","name":"thread_name","pid":1,"tid":0,"args":{"name":"main"}},
            {"ph":"B","name":"q","pid":1,"tid":0,"ts":1.0},
            {"ph":"B","name":"m","pid":1,"tid":0,"ts":2.0},
            {"ph":"i","name":"tick","pid":1,"tid":0,"ts":2.5,"s":"t"},
            {"ph":"E","name":"m","pid":1,"tid":0,"ts":3.0},
            {"ph":"E","name":"q","pid":1,"tid":0,"ts":4.0}
        ]}"#;
        let r = check_trace(t).unwrap();
        assert_eq!(r.spans.len(), 2);
        assert_eq!(r.thread_names.get(&0).map(String::as_str), Some("main"));
        let m = r.spans_named("m").next().unwrap();
        assert_eq!(m.depth, 1);
        assert!((m.dur_us - 1.0).abs() < 1e-9);
    }

    #[test]
    fn checker_rejects_mismatched_and_unclosed() {
        let cross = r#"{"traceEvents":[
            {"ph":"B","name":"a","tid":0,"ts":1},
            {"ph":"E","name":"b","tid":0,"ts":2}
        ]}"#;
        assert!(check_trace(cross).is_err());
        let unclosed = r#"{"traceEvents":[{"ph":"B","name":"a","tid":0,"ts":1}]}"#;
        assert!(check_trace(unclosed).is_err());
        let naked_end = r#"{"traceEvents":[{"ph":"E","name":"a","tid":0,"ts":1}]}"#;
        assert!(check_trace(naked_end).is_err());
    }
}

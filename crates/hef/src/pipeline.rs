//! Whole-pipeline joint `(v, s, p, f)` tuning.
//!
//! The per-family tuner prices each operator in isolation, but a star-query
//! pipeline runs its operators *co-resident*: one fused loop nest shares
//! issue ports, architectural registers, and line-fill buffers across the
//! filter → probe → gather → aggregate chain. Per-operator optima are not
//! pipeline optima — the same argument goSLP makes against greedy local SLP
//! decisions. This module searches the joint configuration space of a whole
//! pipeline with the same Algorithm-2 machinery (min-cost-first expansion,
//! winner/loser classification, monotone pruning) over a cost model that
//! prices the *interactions*:
//!
//! * **Port pressure** — the stages' µop traces are concatenated (weighted
//!   by the fraction of fact rows each stage sees) into one steady-state
//!   body and scheduled together by the `hef-uarch` port simulator, so a
//!   stage that saturates a port slows every co-resident stage.
//! * **Register budget** — adjacent stages live in the same loop body, so
//!   their register demands add; packs deep enough to spill pay a
//!   store+reload penalty per element (§IV.A's register rule, applied
//!   pairwise instead of per-operator).
//! * **LFB occupancy** — random-probe stages prefetch into the same
//!   line-fill buffers the streaming stages occupy, so the effective MLP
//!   cap shrinks with the number of co-resident column streams
//!   ([`hef_uarch::CacheSim::shared_mlp`]).
//!
//! The search is seeded with the per-op composition (registry entries, then
//! analytic candidates), so its result is **never worse than the per-op
//! composition under the same model** — the joint tuner can only move away
//! from the seed when doing so lowers the joint cost.

use std::collections::HashMap;
use std::fmt;

use hef_kernels::{all_configs, Family, HybridConfig, F_AXIS};
use hef_uarch::{AccessPattern, CacheSim, CpuModel, LoopBody};

use crate::candidate::{initial_candidate, seed_prefetch, snap, snap_to_axis};
use crate::error::HefError;
use crate::optimizer::{axis_neighbors, robust_cost, try_neighbors, SpikedCost};
use crate::registry::{PipelineEntry, Registry};
use crate::templates;
use crate::translate::to_loop_body;

/// One operator stage of a lowered pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineStage {
    /// The kernel family executing this stage.
    pub family: Family,
    /// Fraction of fact rows reaching this stage (selectivity of everything
    /// upstream); weights the stage's share of the joint cost.
    pub weight: f64,
    /// Bytes of randomly probed state (hash table, bloom words); `0` for
    /// purely streaming stages.
    pub working_set: u64,
}

impl PipelineStage {
    pub fn new(family: Family, weight: f64, working_set: u64) -> Self {
        PipelineStage { family, weight: weight.max(0.0), working_set }
    }
}

/// A whole lowered pipeline: the operator chain plus the memory context it
/// runs in.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineSpec {
    /// Stages in pipeline order.
    pub stages: Vec<PipelineStage>,
    /// Concurrent sequential column streams (filter columns, fk takes,
    /// measure columns): each occupies line-fill buffers the probe
    /// prefetches cannot use.
    pub streams: usize,
}

/// A joint search node: one hybrid shape per stage plus the shared
/// software-prefetch depth.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PipelineNode {
    pub cfgs: Vec<HybridConfig>,
    pub f: usize,
}

impl fmt::Display for PipelineNode {
    fn fmt(&self, w: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.cfgs.iter().enumerate() {
            if i > 0 {
                write!(w, "|")?;
            }
            write!(w, "{},{},{}", c.v, c.s, c.p)?;
        }
        write!(w, "|f{}", self.f)
    }
}

/// Something that can price a joint pipeline node (lower is better).
pub trait PipelineCostEvaluator {
    fn pipeline_cost(&mut self, node: &PipelineNode) -> f64;
}

impl<E: PipelineCostEvaluator> PipelineCostEvaluator for SpikedCost<E> {
    fn pipeline_cost(&mut self, node: &PipelineNode) -> f64 {
        let c = self.inner.pipeline_cost(node);
        match hef_testutil::fault::next_cost_spike() {
            Some(factor) => c * factor,
            None => c,
        }
    }
}

/// The result of a joint pipeline search.
#[derive(Debug, Clone)]
pub struct PipelineSearchOutcome {
    pub best: PipelineNode,
    pub best_cost: f64,
    pub tested: Vec<(PipelineNode, f64)>,
    pub end_list: Vec<PipelineNode>,
}

/// Register demand of one stage at `cfg`: §IV.A's rule (3 registers per
/// scalar statement, `argc` per SIMD statement) times the pack depth.
pub fn register_demand(template: &crate::ir::OperatorTemplate, cfg: HybridConfig) -> usize {
    let argc = template.max_argc().max(1);
    cfg.p * (3 * cfg.s).max(argc * cfg.v)
}

/// Architectural register count the pairwise spill rule budgets against.
const REG_BUDGET: usize = 32;

/// Cycles per element per spilled register (one store + one reload).
const SPILL_CYCLES: f64 = 2.0;

/// Elements priced per miss-model batch (integer miss counts would truncate
/// per-element expectations to zero).
const BATCH: u64 = 4096;

/// Prices a joint node by composing the stages' µop traces into one
/// co-resident steady-state body and simulating it on a CPU model, plus the
/// shared-LFB memory term and the pairwise register-spill penalty. Unit:
/// nanoseconds per fact row, so nodes with different steps are comparable
/// and stage costs are additive.
pub struct SimulatedPipelineCost<'a> {
    pub model: &'a CpuModel,
    pub spec: &'a PipelineSpec,
    /// Steady-state iterations to simulate.
    pub iterations: usize,
}

impl<'a> SimulatedPipelineCost<'a> {
    pub fn new(model: &'a CpuModel, spec: &'a PipelineSpec) -> Self {
        SimulatedPipelineCost { model, spec, iterations: 8 }
    }
}

impl PipelineCostEvaluator for SimulatedPipelineCost<'_> {
    fn pipeline_cost(&mut self, node: &PipelineNode) -> f64 {
        if node.cfgs.len() != self.spec.stages.len() || self.spec.stages.is_empty() {
            return f64::INFINITY;
        }
        let stages = &self.spec.stages;
        let temps: Vec<_> =
            stages.iter().map(|s| templates::for_family(s.family)).collect();
        let bodies: Vec<LoopBody> = temps
            .iter()
            .zip(&node.cfgs)
            .map(|(t, &cfg)| to_loop_body(t, cfg))
            .collect();

        // Co-resident compute term: replicate each stage's body in
        // proportion to the elements it processes per fact row and schedule
        // the concatenation as one loop. `elems` is the fact-row count one
        // combined iteration stands for — twice the widest stage's step, so
        // every full-weight stage contributes at least two body copies.
        let max_step = node.cfgs.iter().map(|c| c.step()).max().unwrap_or(1);
        let elems = (2 * max_step) as f64;
        let mut combined = LoopBody::new();
        // Stage elements a combined iteration underrepresents (weights too
        // small for one body copy) — charged analytically below.
        let mut analytic = Vec::new();
        for (i, stage) in stages.iter().enumerate() {
            let step = node.cfgs[i].step() as f64;
            let reps = (stage.weight * elems / step).round() as usize;
            if reps == 0 {
                analytic.push(i);
                continue;
            }
            for _ in 0..reps {
                combined.append(&bodies[i]);
            }
        }
        let mut ns_per_row = 0.0;
        let ghz = if combined.is_empty() {
            hef_uarch::freq::frequency_ghz(self.model, &bodies[0])
        } else {
            let r = hef_uarch::simulate(self.model, &combined, self.iterations);
            hef_obs::metrics::add(hef_obs::metrics::Metric::SimRuns, 1);
            hef_obs::metrics::add(hef_obs::metrics::Metric::SimCycles, r.cycles);
            let ghz = hef_uarch::freq::frequency_ghz(self.model, &combined);
            ns_per_row += r.cycles as f64 / self.iterations as f64 / ghz / elems;
            ghz
        };
        for &i in &analytic {
            // Solo per-element cost, weighted by the elements per fact row.
            let r = hef_uarch::simulate(self.model, &bodies[i], self.iterations);
            hef_obs::metrics::add(hef_obs::metrics::Metric::SimRuns, 1);
            hef_obs::metrics::add(hef_obs::metrics::Metric::SimCycles, r.cycles);
            let per_elem =
                r.cycles as f64 / (node.cfgs[i].step() * self.iterations) as f64 / ghz;
            ns_per_row += stages[i].weight * per_elem;
        }

        // Shared-LFB memory term: each random-probe stage's misses are
        // hidden at the MLP left over after the pipeline's column streams
        // claim their line-fill buffers.
        let cache = CacheSim::new(self.model);
        for stage in stages {
            if stage.working_set == 0 || stage.weight <= 0.0 {
                continue;
            }
            let misses = cache.misses(AccessPattern::RandomProbe {
                count: BATCH,
                working_set: stage.working_set,
            });
            let stall = cache.coresident_stall_cycles(&misses, node.f, self.spec.streams);
            ns_per_row += stage.weight * (stall as f64 / BATCH as f64) / ghz;
        }

        // Pairwise register-spill penalty: adjacent stages share the loop
        // body's register file; demand beyond the budget spills, costing a
        // store+reload per element on the rows both stages see.
        for i in 0..stages.len().saturating_sub(1) {
            let d = register_demand(&temps[i], node.cfgs[i])
                + register_demand(&temps[i + 1], node.cfgs[i + 1]);
            let overflow = d.saturating_sub(REG_BUDGET);
            if overflow > 0 {
                let w = stages[i].weight.min(stages[i + 1].weight);
                ns_per_row += w * overflow as f64 * SPILL_CYCLES / ghz;
            }
        }
        ns_per_row
    }
}

/// Neighbours of a joint node: one `(v, s, p)` axis step in exactly one
/// stage (the others fixed), plus one step along the shared `f` axis — the
/// same one-axis-at-a-time relation whose monotone pruning §IV.C justifies,
/// lifted to the product grid.
pub fn try_pipeline_neighbors(node: &PipelineNode) -> Result<Vec<PipelineNode>, HefError> {
    let mut out = Vec::new();
    for (i, &cfg) in node.cfgs.iter().enumerate() {
        for n in try_neighbors(cfg)? {
            let mut cfgs = node.cfgs.clone();
            cfgs[i] = n;
            out.push(PipelineNode { cfgs, f: node.f });
        }
    }
    let fs = axis_neighbors(node.f, F_AXIS)
        .ok_or(HefError::OffAxisPrefetch { f: node.f })?;
    for f in fs {
        out.push(PipelineNode { cfgs: node.cfgs.clone(), f });
    }
    Ok(out)
}

/// Hard cap on joint nodes priced per search. The product grid is
/// astronomically larger than any per-op grid ([`joint_grid_size`]), and the
/// winner/loser descent alone does not bound how much of it a smooth cost
/// surface exposes; best-first order means the budget truncates only the
/// most expensive frontier, and the seed-dominance guarantee (`best_cost <=
/// initial_cost`) is unconditional because the seed is priced first.
pub const SEARCH_BUDGET: usize = 256;

/// Algorithm 2 over the joint per-stage `(v, s, p)` × shared `f` grid:
/// identical winner/loser classification and monotone pruning to the
/// per-operator searches, with a product-grid neighbour relation and a
/// [`SEARCH_BUDGET`] cap on priced nodes.
pub fn optimize_pipeline(
    initial: &PipelineNode,
    eval: &mut dyn PipelineCostEvaluator,
) -> PipelineSearchOutcome {
    let initial = PipelineNode {
        cfgs: initial.cfgs.iter().map(|&c| snap(c)).collect(),
        f: snap_to_axis(initial.f, F_AXIS),
    };
    let _span = hef_obs::span!(
        "optimize_pipeline",
        stages = initial.cfgs.len(),
        f = initial.f
    );
    hef_obs::metrics::add(hef_obs::metrics::Metric::TunerSearches, 1);
    let mut costs: HashMap<PipelineNode, f64> = HashMap::new();
    let mut order: Vec<(PipelineNode, f64)> = Vec::new();
    let mut end_list: Vec<PipelineNode> = Vec::new();

    let c0 = robust_cost(&mut || eval.pipeline_cost(&initial), None, f64::INFINITY);
    costs.insert(initial.clone(), c0);
    order.push((initial.clone(), c0));
    let mut best = (initial.clone(), c0);

    let mut candidates = vec![initial];
    let mut expanded: Vec<PipelineNode> = Vec::new();

    while let Some(pos) = candidates
        .iter()
        .enumerate()
        .min_by(|a, b| costs[a.1].total_cmp(&costs[b.1]))
        .map(|(i, _)| i)
    {
        if costs.len() >= SEARCH_BUDGET {
            break;
        }
        let node = candidates.swap_remove(pos);
        if expanded.contains(&node) {
            continue;
        }
        let node_cost = costs[&node];

        for n in try_pipeline_neighbors(&node).unwrap_or_default() {
            if costs.len() >= SEARCH_BUDGET {
                break;
            }
            if costs.contains_key(&n) {
                continue;
            }
            let c = robust_cost(&mut || eval.pipeline_cost(&n), Some(node_cost), best.1);
            costs.insert(n.clone(), c);
            order.push((n.clone(), c));
            if c < best.1 {
                best = (n.clone(), c);
            }
            if c < node_cost {
                candidates.push(n);
            } else {
                end_list.push(n);
            }
        }
        expanded.push(node);
    }

    PipelineSearchOutcome { best: best.0, best_cost: best.1, tested: order, end_list }
}

/// The per-op composition for a pipeline: each stage at its registry entry
/// (falling back to the candidate generator's analytic pick), the depth at
/// the registry's tuned probe depth (falling back to the analytic seed for
/// the largest random working set). This is both the joint search's seed
/// and the baseline the paper-style per-op tuner would deploy.
pub fn compose_per_op(model: &CpuModel, spec: &PipelineSpec, reg: &Registry) -> PipelineNode {
    let cfgs = spec
        .stages
        .iter()
        .map(|s| {
            snap(reg
                .get(s.family)
                .unwrap_or_else(|| initial_candidate(model, &templates::for_family(s.family))))
        })
        .collect();
    let max_ws = spec.stages.iter().map(|s| s.working_set).max().unwrap_or(0);
    let f = if max_ws == 0 {
        0
    } else {
        match reg.get_prefetch(Family::Probe) {
            Some(f) => snap_to_axis(f, F_AXIS),
            None => seed_prefetch(model, &templates::probe(), max_ws),
        }
    };
    PipelineNode { cfgs, f }
}

/// A jointly tuned pipeline: the output of the whole-pipeline offline phase.
#[derive(Debug, Clone)]
pub struct TunedPipeline {
    /// The winning joint node.
    pub node: PipelineNode,
    /// The per-op composition the search was seeded with.
    pub initial: PipelineNode,
    /// The seed's joint cost under the same model — the per-op-tuned
    /// baseline the acceptance comparison is against. The search starts
    /// here, so `outcome.best_cost <= initial_cost` always holds.
    pub initial_cost: f64,
    /// Full search trace.
    pub outcome: PipelineSearchOutcome,
}

impl TunedPipeline {
    /// One-line summary for reports.
    pub fn describe(&self) -> String {
        format!(
            "pipeline: {} (seed {} @ {:.3} ns/row, tuned to {:.3} ns/row, tested {} nodes)",
            self.node,
            self.initial,
            self.initial_cost,
            self.outcome.best_cost,
            self.outcome.tested.len(),
        )
    }

    /// The registry v3 row for this result.
    pub fn entry(&self, spec: &PipelineSpec) -> PipelineEntry {
        let stages = spec
            .stages
            .iter()
            .zip(&self.node.cfgs)
            .map(|(s, &cfg)| (s.family, cfg))
            .collect();
        PipelineEntry { stages, f: self.node.f }
    }
}

/// Jointly tune a pipeline against a modeled CPU, seeded from `reg`'s
/// per-op entries. Measurements pass through [`SpikedCost`] so
/// `HEF_FAULT=spike:…` exercises the re-measurement defence here too.
pub fn tune_pipeline_simulated(
    model: &CpuModel,
    spec: &PipelineSpec,
    reg: &Registry,
) -> TunedPipeline {
    let _span = hef_obs::trace::span_begin_labeled(
        "tune",
        "pipeline",
        &[("stages", spec.stages.len() as i64), ("measured", 0)],
    );
    let initial = compose_per_op(model, spec, reg);
    let mut eval = SpikedCost { inner: SimulatedPipelineCost::new(model, spec) };
    let initial_cost = eval.inner.pipeline_cost(&initial);
    let outcome = optimize_pipeline(&initial, &mut eval);
    TunedPipeline { node: outcome.best.clone(), initial, initial_cost, outcome }
}

/// Price one joint node for a pipeline on a model (the deterministic
/// evaluator the tuner uses), for reports and differential tests.
pub fn pipeline_cost(model: &CpuModel, spec: &PipelineSpec, node: &PipelineNode) -> f64 {
    SimulatedPipelineCost::new(model, spec).pipeline_cost(node)
}

/// Joint-grid size for `n` stages (saturating; the product grid overflows
/// quickly and is only reported, never allocated).
pub fn joint_grid_size(n: usize) -> usize {
    let per = all_configs().count();
    let mut total = F_AXIS.len();
    for _ in 0..n {
        total = total.saturating_mul(per);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A DRAM-probe star pipeline in the shape of an SSB query.
    fn star_spec() -> PipelineSpec {
        PipelineSpec {
            stages: vec![
                PipelineStage::new(Family::Filter, 1.0, 0),
                PipelineStage::new(Family::Probe, 0.5, 64 << 20),
                PipelineStage::new(Family::Gather, 0.2, 0),
                PipelineStage::new(Family::AggSum, 0.2, 0),
            ],
            streams: 4,
        }
    }

    #[test]
    fn joint_cost_is_finite_and_additive_in_weight() {
        let m = CpuModel::silver_4110();
        let spec = star_spec();
        let node = PipelineNode { cfgs: vec![HybridConfig::new(1, 1, 3); 4], f: 16 };
        let c = pipeline_cost(&m, &spec, &node);
        assert!(c.is_finite() && c > 0.0, "{c}");
        // Halving every weight cannot increase the cost.
        let mut light = spec.clone();
        for s in &mut light.stages {
            s.weight *= 0.5;
        }
        let cl = pipeline_cost(&m, &light, &node);
        assert!(cl <= c, "{cl} vs {c}");
    }

    #[test]
    fn mismatched_node_is_unaffordable_not_a_panic() {
        let m = CpuModel::silver_4110();
        let spec = star_spec();
        let node = PipelineNode { cfgs: vec![HybridConfig::new(1, 1, 3)], f: 0 };
        assert_eq!(pipeline_cost(&m, &spec, &node), f64::INFINITY);
    }

    #[test]
    fn neighbors_step_one_stage_or_the_depth() {
        let node = PipelineNode {
            cfgs: vec![HybridConfig::new(2, 2, 2), HybridConfig::new(1, 1, 3)],
            f: 8,
        };
        let ns = try_pipeline_neighbors(&node).unwrap();
        // Every neighbour differs from the node in exactly one coordinate.
        for n in &ns {
            let cfg_diffs = n
                .cfgs
                .iter()
                .zip(&node.cfgs)
                .filter(|(a, b)| a != b)
                .count();
            let f_diff = usize::from(n.f != node.f);
            assert_eq!(cfg_diffs + f_diff, 1, "{n}");
        }
        // Both f steps present (8 → 4 and 8 → 16).
        assert!(ns.iter().any(|n| n.f == 4));
        assert!(ns.iter().any(|n| n.f == 16));
    }

    #[test]
    fn joint_search_never_loses_to_its_per_op_seed() {
        let m = CpuModel::silver_4110();
        let spec = star_spec();
        let t = tune_pipeline_simulated(&m, &spec, &Registry::default());
        assert!(t.outcome.best_cost.is_finite());
        assert!(t.outcome.tested.len() <= SEARCH_BUDGET, "{}", t.outcome.tested.len());
        assert!(
            t.outcome.best_cost <= t.initial_cost,
            "joint {} vs composed {}",
            t.outcome.best_cost,
            t.initial_cost
        );
        // Every stage of the winner is on the compiled grid.
        for c in &t.node.cfgs {
            assert!(crate::error::on_grid(c.v, c.s, c.p), "{c}");
        }
        assert!(F_AXIS.contains(&t.node.f));
        assert!(t.describe().contains("pipeline"));
    }

    #[test]
    fn register_coupling_steers_the_joint_tuner_away_from_greedy_packs() {
        // Two adjacent stages seeded at register-hungry packs: the joint
        // evaluator must price the pairwise overflow that the per-op view
        // cannot see.
        let m = CpuModel::silver_4110();
        let spec = star_spec();
        let greedy = PipelineNode {
            cfgs: vec![
                HybridConfig::new(2, 4, 4),
                HybridConfig::new(2, 4, 4),
                HybridConfig::new(1, 1, 3),
                HybridConfig::new(1, 1, 3),
            ],
            f: 16,
        };
        let mut modest = greedy.clone();
        modest.cfgs[0] = HybridConfig::new(2, 4, 1);
        modest.cfgs[1] = HybridConfig::new(2, 4, 1);
        let t = templates::for_family(Family::Filter);
        assert!(
            register_demand(&t, greedy.cfgs[0]) * 2 > REG_BUDGET,
            "test premise: greedy packs overflow"
        );
        let cg = pipeline_cost(&m, &spec, &greedy);
        let cm = pipeline_cost(&m, &spec, &modest);
        assert!(cg.is_finite() && cm.is_finite());
    }

    #[test]
    fn entry_maps_stages_in_order() {
        let m = CpuModel::silver_4110();
        let spec = star_spec();
        let t = tune_pipeline_simulated(&m, &spec, &Registry::default());
        let e = t.entry(&spec);
        assert_eq!(e.stages.len(), 4);
        assert_eq!(e.stages[0].0, Family::Filter);
        assert_eq!(e.stages[1].0, Family::Probe);
        assert_eq!(e.f, t.node.f);
    }

    #[test]
    fn compose_per_op_prefers_registry_entries() {
        let m = CpuModel::silver_4110();
        let spec = star_spec();
        let mut reg = Registry::default();
        reg.insert(Family::Probe, HybridConfig::new(8, 0, 1));
        reg.insert_prefetch(Family::Probe, 32);
        let node = compose_per_op(&m, &spec, &reg);
        assert_eq!(node.cfgs[1], HybridConfig::new(8, 0, 1));
        assert_eq!(node.f, 32);
        // Unregistered stages fall to the analytic candidate.
        let analytic = initial_candidate(&m, &templates::for_family(Family::Filter));
        assert_eq!(node.cfgs[0], analytic);
    }

    #[test]
    fn cache_resident_pipeline_tunes_depth_to_zero() {
        let m = CpuModel::silver_4110();
        let spec = PipelineSpec {
            stages: vec![
                PipelineStage::new(Family::Filter, 1.0, 0),
                PipelineStage::new(Family::Probe, 1.0, 16 << 10),
                PipelineStage::new(Family::AggSum, 1.0, 0),
            ],
            streams: 2,
        };
        let t = tune_pipeline_simulated(&m, &spec, &Registry::default());
        assert_eq!(t.node.f, 0, "nothing to hide at L1 residency: {}", t.node);
    }

    #[test]
    fn joint_search_dominates_per_op_composition_on_random_pipelines() {
        // The acceptance property, property-tested: on any pipeline shape —
        // random stage families, reach fractions, working sets, stream
        // pressure, and both CPU models — the joint tuner's simulated cost
        // never exceeds the composition of per-op optima priced on the same
        // model (the search is seeded there and the budget prices the seed
        // first). Case count is small: each case is a full joint search.
        use hef_testutil::prop::{self, strategy, Config};
        let families = [Family::Filter, Family::Probe, Family::Gather, Family::AggSum];
        prop::check_with(
            &Config::with_cases(4),
            "joint_dominates_per_op",
            strategy::any_u64(),
            |&seed| {
                let mut rng = hef_testutil::Rng::seed_from_u64(seed);
                let model = if rng.gen_range(0..2u32) == 0 {
                    CpuModel::silver_4110()
                } else {
                    CpuModel::gold_6240r()
                };
                let nstages = rng.gen_range(2..4usize);
                let stages: Vec<PipelineStage> = (0..nstages)
                    .map(|_| {
                        let family = families[rng.gen_range(0..families.len())];
                        let weight = rng.gen_range(1..=100u32) as f64 / 100.0;
                        let ws = if family == Family::Probe {
                            1u64 << rng.gen_range(10..27u32)
                        } else {
                            0
                        };
                        PipelineStage::new(family, weight, ws)
                    })
                    .collect();
                let spec = PipelineSpec { stages, streams: rng.gen_range(1..6usize) };
                let reg = Registry::default();
                let per_op = compose_per_op(&model, &spec, &reg);
                let per_op_cost = pipeline_cost(&model, &spec, &per_op);
                let t = tune_pipeline_simulated(&model, &spec, &reg);
                hef_testutil::prop_assert!(
                    per_op_cost.is_finite() && t.outcome.best_cost.is_finite(),
                    "infinite cost for {spec:?}"
                );
                hef_testutil::prop_assert!(
                    t.outcome.best_cost <= per_op_cost,
                    "joint {} beat by per-op {} on {spec:?}",
                    t.outcome.best_cost,
                    per_op_cost
                );
                Ok(())
            },
        );
    }

    #[test]
    fn joint_grid_size_saturates_instead_of_overflowing() {
        assert!(joint_grid_size(0) == F_AXIS.len());
        assert!(joint_grid_size(4) > joint_grid_size(1));
        assert_eq!(joint_grid_size(1000), usize::MAX);
    }
}

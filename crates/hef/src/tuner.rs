//! The offline-phase facade (the paper's Fig. 4 end-to-end flow):
//! template → candidate generator → translator → optimizer → tuned operator.
//!
//! "Once we get the optimal implementation of hybrid execution operators, we
//! could use them to implement various queries directly without further
//! training" — [`TunedOperator`] is that persistent result; the engine keys
//! its operator flavors off it.

use hef_kernels::{Family, HybridConfig};
use hef_uarch::CpuModel;

use crate::candidate::{initial_candidate, seed_prefetch};
use crate::error::HefError;
use crate::ir::OperatorTemplate;
use crate::optimizer::{
    optimize, optimize_probe, MeasuredCost, MeasuredProbeCost, ProbeNode, ProbeSearchOutcome,
    SearchOutcome, SimulatedCost, SimulatedProbeCost, SpikedCost,
};
use crate::templates;

/// A tuned operator: the output of the offline phase.
#[derive(Debug, Clone)]
pub struct TunedOperator {
    pub family: Family,
    /// The winning configuration.
    pub cfg: HybridConfig,
    /// The initial node the candidate generator proposed.
    pub initial: HybridConfig,
    /// Full search trace.
    pub outcome: SearchOutcome,
    /// Predicted-vs-measured calibration of the winning node, recorded when
    /// tuning actually measured this machine (`None` on simulated paths).
    pub drift: Option<DriftRecord>,
}

impl TunedOperator {
    /// One-line summary for reports.
    pub fn describe(&self) -> String {
        format!(
            "{}: {} (initial {}, tested {}/{} nodes, pruned {})",
            self.family.name(),
            self.cfg,
            self.initial,
            self.outcome.tested.len(),
            hef_kernels::all_configs().count(),
            self.outcome.pruned(),
        )
    }
}

/// A tuned probe operator: the hybrid shape *and* the prefetch depth `f`,
/// found together by the four-dimensional search.
#[derive(Debug, Clone)]
pub struct TunedProbe {
    /// The winning `(v, s, p, f)` node.
    pub node: ProbeNode,
    /// The seeded initial node (analytic shape + analytic depth).
    pub initial: ProbeNode,
    /// Full search trace.
    pub outcome: ProbeSearchOutcome,
}

impl TunedProbe {
    /// One-line summary for reports.
    pub fn describe(&self) -> String {
        format!(
            "probe: {} (initial {}, tested {}/{} nodes, pruned {})",
            self.node,
            self.initial,
            self.outcome.tested.len(),
            hef_kernels::all_configs().count() * hef_kernels::F_AXIS.len(),
            self.outcome.pruned(),
        )
    }
}

/// Predicted-vs-measured calibration for one tuned node — the goSLP
/// reconciliation signal. A globally-optimized SIMD decision is only
/// trustworthy when the cost model that picked it is checked against the
/// machine it runs on; this record makes simulated-tuner miscalibration
/// visible instead of silent. Recorded per registry row at tune time
/// (`# drift:` provenance) and re-measured at `HEF_PIPELINE` replay time
/// by `repro report`.
#[derive(Debug, Clone, Copy)]
pub struct DriftRecord {
    pub family: Family,
    pub cfg: HybridConfig,
    /// Port-simulator cycles per row (steady state, generic host model).
    pub predicted_cpr: f64,
    /// RDTSC-measured hardware cycles per row on this machine.
    pub measured_cpr: f64,
}

impl DriftRecord {
    /// `measured / predicted`: 1.0 = perfectly calibrated; > 1 means the
    /// simulator is optimistic on this machine, < 1 pessimistic.
    pub fn ratio(&self) -> f64 {
        if self.predicted_cpr > 0.0 {
            self.measured_cpr / self.predicted_cpr
        } else {
            f64::NAN
        }
    }

    /// One-line summary for reports.
    pub fn describe(&self) -> String {
        format!(
            "{}: predicted {:.2} c/row, measured {:.2} c/row, drift {:.2}x",
            self.family.name(),
            self.predicted_cpr,
            self.measured_cpr,
            self.ratio()
        )
    }
}

/// Steady-state port-simulator cycles per row for `cfg` on `model`.
pub fn predicted_cycles_per_row(family: Family, cfg: HybridConfig, model: &CpuModel) -> f64 {
    let template = templates::for_family(family);
    let body = crate::translate::to_loop_body(&template, cfg);
    let iterations = 60;
    let r = hef_uarch::simulate(model, &body, iterations);
    r.cycles as f64 / (cfg.step() * iterations) as f64
}

/// Measure drift for one node: price `cfg` on the port simulator (generic
/// host model) and run the compiled kernel over `n` synthetic rows on this
/// machine, then record the ratio in the `tuner.drift` histogram (permille,
/// 1000 = calibrated). `None` when hardware cycle counters are unavailable
/// (non-x86_64) or the node is off-grid.
pub fn measure_drift(family: Family, cfg: HybridConfig, n: usize) -> Option<DriftRecord> {
    use crate::optimizer::CostEvaluator as _;
    let mut eval = MeasuredCost::new(family, n);
    if !eval.cost(cfg).is_finite() {
        return None;
    }
    let cycles = eval.last_cycles?;
    let rec = DriftRecord {
        family,
        cfg,
        predicted_cpr: predicted_cycles_per_row(family, cfg, &CpuModel::host()),
        measured_cpr: cycles as f64 / n.max(1) as f64,
    };
    let ratio = rec.ratio();
    if ratio.is_finite() && ratio >= 0.0 {
        let permille = (ratio * 1000.0).round() as u64;
        hef_obs::metrics::observe(hef_obs::metrics::Hist::TunerDriftPermille, permille);
        hef_obs::trace::instant_labeled(
            "tuner_drift",
            family.name(),
            &[("permille", permille as i64)],
        );
    }
    Some(rec)
}

/// Tune the probe family on this machine over `(v, s, p, f)`: a build side
/// of `build_entries` entries (choose it to land the hash table in the
/// cache level being tuned for) probed with `nkeys` uniform keys per trial.
/// The depth axis is seeded from the cache model — miss latency divided by
/// loop-body cycles — so the search starts near the analytic balance point.
pub fn tune_probe_measured(build_entries: usize, nkeys: usize) -> TunedProbe {
    let _span = hef_obs::trace::span_begin_labeled(
        "tune",
        "probe+f",
        &[("n", nkeys as i64), ("build", build_entries as i64), ("measured", 1)],
    );
    let template = templates::probe();
    let model = CpuModel::host();
    let cfg = initial_candidate(&model, &template);
    let mut eval = SpikedCost { inner: MeasuredProbeCost::new(build_entries, nkeys) };
    let f = seed_prefetch(&model, &template, eval.inner.working_set_bytes() as u64);
    let initial = ProbeNode { cfg, f };
    let outcome = optimize_probe(initial, &mut eval);
    TunedProbe { node: outcome.best, initial, outcome }
}

/// Tune the probe family against a modeled CPU with the build side resident
/// in a working set of `working_set` bytes.
pub fn tune_probe_simulated(model: &CpuModel, working_set: u64) -> TunedProbe {
    let _span = hef_obs::trace::span_begin_labeled(
        "tune",
        "probe+f",
        &[("ws", working_set as i64), ("measured", 0)],
    );
    let template = templates::probe();
    let cfg = initial_candidate(model, &template);
    let f = seed_prefetch(model, &template, working_set);
    let mut eval =
        SpikedCost { inner: SimulatedProbeCost::new(model, &template, working_set) };
    let outcome = optimize_probe(ProbeNode { cfg, f }, &mut eval);
    TunedProbe { node: outcome.best, initial: ProbeNode { cfg, f }, outcome }
}

/// Tune an operator by running its compiled kernels on this machine with
/// `n` elements of synthetic input per trial.
///
/// Measurements pass through [`SpikedCost`], so a `HEF_FAULT=spike:…` plan
/// exercises the optimizer's median-of-3 re-measurement on the real path.
pub fn tune_measured(family: Family, n: usize) -> TunedOperator {
    let _span =
        hef_obs::trace::span_begin_labeled("tune", family.name(), &[("n", n as i64), ("measured", 1)]);
    let template = templates::for_family(family);
    let model = CpuModel::host();
    let initial = initial_candidate(&model, &template);
    let mut eval = SpikedCost { inner: MeasuredCost::new(family, n) };
    let outcome = optimize(initial, &mut eval);
    let drift = measure_drift(family, outcome.best, n);
    TunedOperator { family, cfg: outcome.best, initial, outcome, drift }
}

/// Tune an operator against a modeled CPU (the path for the paper's Xeons,
/// which this reproduction does not physically have).
pub fn tune_simulated(family: Family, model: &CpuModel) -> TunedOperator {
    let _span =
        hef_obs::trace::span_begin_labeled("tune", family.name(), &[("measured", 0)]);
    let template = templates::for_family(family);
    let initial = initial_candidate(model, &template);
    let mut eval = SpikedCost { inner: SimulatedCost::new(model, &template) };
    let outcome = optimize(initial, &mut eval);
    TunedOperator { family, cfg: outcome.best, initial, outcome, drift: None }
}

/// Tune a *user-supplied* template (the §IV.B path: operators arrive as
/// text, not as built-ins) against a modeled CPU. Unlike the built-in
/// facades this input is untrusted, so validation problems come back as a
/// typed [`HefError`] instead of a panic deep inside the translator.
pub fn try_tune_template(
    template: &OperatorTemplate,
    model: &CpuModel,
) -> Result<(HybridConfig, SearchOutcome), HefError> {
    template.validate().map_err(|m| HefError::InvalidTemplate {
        operator: template.name.clone(),
        message: m,
    })?;
    let initial = initial_candidate(model, template);
    let mut eval = SpikedCost { inner: SimulatedCost::new(model, template) };
    let outcome = optimize(initial, &mut eval);
    Ok((outcome.best, outcome))
}

/// Parse-and-tune in one step: template source text → tuned node. The whole
/// §IV.B user path with every failure typed.
pub fn try_tune_source(
    source: &str,
    model: &CpuModel,
) -> Result<(HybridConfig, SearchOutcome), HefError> {
    let template = crate::parse::parse_template(source)?;
    try_tune_template(&template, model)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulated_tuning_finds_hybrid_points() {
        // On the Silver model, murmur's optimum must use both unit kinds or
        // packing — pure (0,1,1) and (1,0,1) leave pipes idle.
        let t = tune_simulated(Family::Murmur, &CpuModel::silver_4110());
        assert!(
            t.cfg != HybridConfig::SCALAR && t.cfg != HybridConfig::SIMD,
            "tuned to {}",
            t.cfg
        );
        assert!(t.outcome.tested.len() >= 3);
    }

    #[test]
    fn simulated_crc_tunes_to_deep_packing() {
        // The gather-latency story: the tuned CRC64 node must have several
        // independent statement instances in flight (v·p well above 1).
        let t = tune_simulated(Family::Crc64, &CpuModel::silver_4110());
        assert!(
            t.cfg.v * t.cfg.p + t.cfg.s * t.cfg.p >= 4,
            "tuned to {}",
            t.cfg
        );
    }

    #[test]
    fn measured_tuning_runs_end_to_end() {
        let t = tune_measured(Family::AggSum, 8192);
        assert!(t.outcome.best_cost.is_finite());
        assert!(t.describe().contains("agg_sum"));
        // Where cycle counters exist, the tuned node carries calibration.
        if let Some(d) = &t.drift {
            assert!(d.predicted_cpr > 0.0, "{}", d.describe());
            assert!(d.measured_cpr > 0.0, "{}", d.describe());
            assert!(d.ratio().is_finite() && d.ratio() > 0.0);
        }
    }

    #[test]
    fn drift_measurement_is_self_consistent() {
        let cfg = HybridConfig::SIMD;
        let pred = predicted_cycles_per_row(Family::AggSum, cfg, &CpuModel::host());
        assert!(pred.is_finite() && pred > 0.0);
        if let Some(d) = measure_drift(Family::AggSum, cfg, 8192) {
            assert_eq!(d.family, Family::AggSum);
            // Same simulator inputs → same prediction.
            assert!((d.predicted_cpr - pred).abs() < 1e-9, "{} vs {pred}", d.predicted_cpr);
        }
    }

    #[test]
    fn simulated_probe_tuning_picks_depth_by_residency() {
        let m = CpuModel::silver_4110();
        // DRAM-resident build side: the tuned depth must be non-zero —
        // serialized misses dominate and prefetch hides them.
        let dram = tune_probe_simulated(&m, 64 << 20);
        assert!(dram.node.f > 0, "tuned to {}", dram.node);
        assert!(dram.outcome.best_cost.is_finite());
        // L1-resident: no misses, so depth must tune (or stay) at zero.
        let hot = tune_probe_simulated(&m, 16 << 10);
        assert_eq!(hot.node.f, 0, "tuned to {}", hot.node);
        // The 4-D search still prunes.
        let total = hef_kernels::all_configs().count() * hef_kernels::F_AXIS.len();
        assert!(dram.outcome.tested.len() * 2 < total);
        assert!(dram.describe().contains("probe"));
    }

    #[test]
    fn measured_probe_tuning_runs_end_to_end() {
        // Small table, few keys: just the plumbing, not a perf claim.
        let t = tune_probe_measured(1 << 10, 4096);
        assert!(t.outcome.best_cost.is_finite());
        assert!(hef_kernels::F_AXIS.contains(&t.node.f));
        assert!(crate::error::on_grid(t.node.cfg.v, t.node.cfg.s, t.node.cfg.p));
    }

    #[test]
    fn tuning_source_text_works_and_types_failures() {
        let model = CpuModel::silver_4110();
        let src = render_ok_template();
        let (best, outcome) = try_tune_source(&src, &model).expect("valid source tunes");
        assert!(crate::error::on_grid(best.v, best.s, best.p));
        assert!(!outcome.tested.is_empty());

        // Parse failure → HefError::Template, not a panic.
        let e = try_tune_source("operator broken(", &model).unwrap_err();
        assert!(matches!(e, crate::HefError::Template(_)), "{e}");
    }

    fn render_ok_template() -> String {
        crate::parse::render_template(&templates::for_family(Family::AggSum))
    }
}

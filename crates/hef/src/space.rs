//! Search-space accounting (§II.C, Eq. 1–2 of the paper).
//!
//! The naive test-everything approach has `O(v·s·p)` cost; these helpers
//! compute the paper's closed-form size and the savings the pruning search
//! achieves, which the `ablation-search` benchmark reports.

/// Eq. 1: the piecewise search-space size for statement-count bounds
/// `v`, `s` and pack bound `p`.
pub fn space_eq1(v: usize, s: usize, p: usize) -> usize {
    if v == 0 && s != 0 {
        s
    } else if s == 0 && v != 0 {
        v
    } else if v != 0 && s != 0 {
        v * s * p + v + s
    } else {
        0
    }
}

/// Eq. 2: the paper's reduced closed form
/// `space = v·s·(p−1) + v + s − 1` for `v + s ≥ 1`.
///
/// Note: the paper's reduction is off by `v·s + 1` against its own Eq. 1 in
/// the general case (and by 1 in the degenerate cases); we implement both
/// exactly as printed and the tests document the discrepancy.
pub fn space_eq2(v: usize, s: usize, p: usize) -> usize {
    assert!(v + s >= 1);
    v * s * (p.saturating_sub(1)) + v + s - 1
}

/// The number of nodes on our *compiled grid* (the practical search space:
/// axis values are restricted to what the build script instantiated).
pub fn grid_size() -> usize {
    hef_kernels::all_configs().count()
}

/// The probe family's grid: the `(v, s, p)` grid times the prefetch-depth
/// axis ([`hef_kernels::F_AXIS`]). `f` is a runtime parameter, so this
/// multiplies the *search*, not the compiled-kernel count.
pub fn probe_grid_size() -> usize {
    grid_size() * hef_kernels::F_AXIS.len()
}

/// Savings report for a finished search.
#[derive(Debug, Clone, Copy)]
pub struct PruningSavings {
    /// Nodes whose kernels were actually generated and timed.
    pub tested: usize,
    /// Grid nodes never touched thanks to pruning.
    pub skipped: usize,
    /// Total grid nodes.
    pub total: usize,
}

impl PruningSavings {
    pub fn new(tested: usize) -> Self {
        let total = grid_size();
        PruningSavings { tested, skipped: total.saturating_sub(tested), total }
    }

    /// Fraction of the grid that never needed testing.
    pub fn saved_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.skipped as f64 / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_degenerate_cases() {
        assert_eq!(space_eq1(0, 5, 3), 5);
        assert_eq!(space_eq1(4, 0, 3), 4);
        assert_eq!(space_eq1(0, 0, 3), 0);
    }

    #[test]
    fn eq1_general_case() {
        // Σ_1^v Σ_1^s Σ_1^p 1 + v + s = v·s·p + v + s.
        assert_eq!(space_eq1(2, 3, 4), 2 * 3 * 4 + 2 + 3);
    }

    #[test]
    fn eq2_as_printed() {
        assert_eq!(space_eq2(2, 3, 4), 2 * 3 * 3 + 2 + 3 - 1);
        // Documented discrepancy vs Eq. 1: v·s + 1.
        assert_eq!(
            space_eq1(2, 3, 4) - space_eq2(2, 3, 4),
            2 * 3 + 1
        );
    }

    #[test]
    fn complexity_is_vsp() {
        // Doubling p roughly doubles the dominant term.
        let a = space_eq2(4, 4, 4);
        let b = space_eq2(4, 4, 8);
        assert!(b > a + 4 * 4 * 3);
    }

    #[test]
    fn probe_grid_multiplies_by_the_depth_axis() {
        assert_eq!(probe_grid_size(), grid_size() * hef_kernels::F_AXIS.len());
        assert!(probe_grid_size() > grid_size());
    }

    #[test]
    fn savings_accounting() {
        let s = PruningSavings::new(10);
        assert_eq!(s.total, grid_size());
        assert_eq!(s.tested + s.skipped, s.total);
        assert!(s.saved_fraction() > 0.5, "grid is much larger than 10 nodes");
    }
}

//! Textual operator templates.
//!
//! In the paper, "the template of the operator is a string stored in the
//! operator template file, and it stores an operator list and an operator
//! dictionary … to add a new operator, users could write the operator
//! template with the hybrid intermediate description, and then add it to
//! the list and dictionary" (§IV.B). This module is that surface: a small
//! line-oriented language for writing operators in HID, parsed into
//! [`OperatorTemplate`]s, plus the operator-dictionary file format.
//!
//! ```text
//! // comments start with `//`
//! operator murmurhash64(val, out) {
//!     data = hi_load_epi64(val)
//!     k    = hi_mullo_epi64(data, m:0xc6a4a7935bd1e995)
//!     kr   = hi_srli_epi64(k, #47)
//!     k2   = hi_xor_epi64(kr, k)
//!     hi_store_epi64(k2, out)
//! }
//! ```
//!
//! Operand syntax: a bare identifier is a hybrid variable, or a pointer
//! parameter if it appears in the header; `name:value` declares a named
//! constant (decimal or `0x…`); `#n` is an immediate. A `carry x` line
//! before the statements marks `x` as loop-carried.

use std::collections::BTreeMap;

use hef_hid::desc::HidOp;

use crate::ir::{Operand, OperatorTemplate, Stmt};

/// A parse failure, with 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError { line, message: message.into() })
}

/// Map an `hi_*` interface name to its op. Suffixes (`_epi64`) are
/// accepted but not required.
fn op_by_name(name: &str) -> Option<HidOp> {
    let stem = name
        .strip_prefix("hi_")?
        .trim_end_matches("_epi64")
        .trim_end_matches("_i64");
    Some(match stem {
        "load" | "loadu" => HidOp::Load,
        "store" | "storeu" => HidOp::Store,
        "gather" => HidOp::Gather,
        "add" => HidOp::Add,
        "sub" => HidOp::Sub,
        "mul" | "mullo" => HidOp::Mul,
        "and" => HidOp::And,
        "or" => HidOp::Or,
        "xor" => HidOp::Xor,
        "srli" => HidOp::Srli,
        "slli" => HidOp::Slli,
        "sllv" => HidOp::Sllv,
        "srlv" => HidOp::Srlv,
        "cmp" | "cmpeq" => HidOp::Cmp,
        "blend" => HidOp::Blend,
        "set1" => HidOp::Set1,
        _ => return None,
    })
}

fn parse_u64(text: &str) -> Option<u64> {
    if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        text.parse().ok()
    }
}

fn parse_operand(text: &str, params: &[String], line: usize) -> Result<Operand, ParseError> {
    let text = text.trim();
    if let Some(imm) = text.strip_prefix('#') {
        let Some(k) = imm.parse::<u32>().ok().filter(|&k| k < 64) else {
            return err(line, format!("bad immediate `{text}` (expected #0..#63)"));
        };
        return Ok(Operand::Imm(k));
    }
    if let Some((name, value)) = text.split_once(':') {
        let Some(v) = parse_u64(value.trim()) else {
            return err(line, format!("bad constant value in `{text}`"));
        };
        return Ok(Operand::Const(name.trim().to_string(), v));
    }
    if text.is_empty() || !text.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return err(line, format!("bad operand `{text}`"));
    }
    if params.iter().any(|p| p == text) {
        Ok(Operand::Param(text.to_string()))
    } else {
        Ok(Operand::Var(text.to_string()))
    }
}

/// Render a template back into the textual language (the inverse of
/// [`parse_template`]; `parse(render(t))` reproduces `t` exactly).
pub fn render_template(t: &OperatorTemplate) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "operator {}({}) {{", t.name, t.params.join(", "));
    for c in &t.carried {
        let _ = writeln!(out, "    carry {c}");
    }
    for st in &t.stmts {
        let args: Vec<String> = st
            .args
            .iter()
            .map(|a| match a {
                Operand::Var(n) | Operand::Param(n) => n.clone(),
                Operand::Const(n, v) => format!("{n}:{v:#x}"),
                Operand::Imm(k) => format!("#{k}"),
            })
            .collect();
        let call = format!("{}({})", interface_name(st.op), args.join(", "));
        match &st.dst {
            Some(d) => {
                let _ = writeln!(out, "    {d} = {call}");
            }
            None => {
                let _ = writeln!(out, "    {call}");
            }
        }
    }
    out.push_str("}\n");
    out
}

fn interface_name(op: HidOp) -> &'static str {
    match op {
        HidOp::Load => "hi_load_epi64",
        HidOp::Store => "hi_store_epi64",
        HidOp::Gather => "hi_gather_epi64",
        HidOp::Add => "hi_add_epi64",
        HidOp::Sub => "hi_sub_epi64",
        HidOp::Mul => "hi_mullo_epi64",
        HidOp::And => "hi_and_epi64",
        HidOp::Or => "hi_or_epi64",
        HidOp::Xor => "hi_xor_epi64",
        HidOp::Srli => "hi_srli_epi64",
        HidOp::Slli => "hi_slli_epi64",
        HidOp::Sllv => "hi_sllv_epi64",
        HidOp::Srlv => "hi_srlv_epi64",
        HidOp::Cmp => "hi_cmp_epi64",
        HidOp::Blend => "hi_blend_epi64",
        HidOp::Set1 => "hi_set1_epi64",
    }
}

/// Parse one `operator name(params…) { … }` block (or a whole file
/// containing exactly one).
pub fn parse_template(source: &str) -> Result<OperatorTemplate, ParseError> {
    let mut templates = parse_file(source)?;
    let n = templates.len();
    match templates.pop_first() {
        Some((_, t)) if n == 1 => Ok(t),
        None => err(0, "no operator block found"),
        Some(_) => err(0, format!("expected one operator block, found {n}")),
    }
}

/// Parse an operator-template file: any number of `operator` blocks,
/// returned as the paper's operator dictionary (name → template).
pub fn parse_file(source: &str) -> Result<BTreeMap<String, OperatorTemplate>, ParseError> {
    let mut dict = BTreeMap::new();
    let mut current: Option<OperatorTemplate> = None;

    for (i, raw) in source.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.split("//").next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }

        if let Some(rest) = line.strip_prefix("operator ") {
            if current.is_some() {
                return err(line_no, "nested `operator` block");
            }
            let Some((name, after)) = rest.split_once('(') else {
                return err(line_no, "expected `operator name(params…) {`");
            };
            let Some((params, brace)) = after.split_once(')') else {
                return err(line_no, "missing `)` in operator header");
            };
            if brace.trim() != "{" {
                return err(line_no, "operator header must end with `{`");
            }
            let params: Vec<String> = params
                .split(',')
                .map(|p| p.trim().to_string())
                .filter(|p| !p.is_empty())
                .collect();
            current = Some(OperatorTemplate {
                name: name.trim().to_string(),
                params,
                carried: Vec::new(),
                stmts: Vec::new(),
            });
            continue;
        }

        if line == "}" {
            let Some(t) = current.take() else {
                return err(line_no, "unmatched `}`");
            };
            t.validate().map_err(|m| ParseError { line: line_no, message: m })?;
            if dict.insert(t.name.clone(), t).is_some() {
                return err(line_no, "duplicate operator name");
            }
            continue;
        }

        let Some(t) = current.as_mut() else {
            return err(line_no, format!("statement outside operator block: `{line}`"));
        };

        if let Some(var) = line.strip_prefix("carry ") {
            t.carried.push(var.trim().to_string());
            continue;
        }

        // `dst = hi_op(args…)` or bare `hi_store(args…)`.
        let (dst, call) = match line.split_once('=') {
            Some((d, c)) if !c.trim_start().starts_with('=') => {
                (Some(d.trim().to_string()), c.trim())
            }
            _ => (None, line),
        };
        let Some((op_name, args_text)) = call.split_once('(') else {
            return err(line_no, format!("expected a call, got `{call}`"));
        };
        let Some(op) = op_by_name(op_name.trim()) else {
            return err(line_no, format!("unknown HID op `{}`", op_name.trim()));
        };
        let Some(args_text) = args_text.trim().strip_suffix(')') else {
            return err(line_no, "missing `)`");
        };
        let mut args = Vec::new();
        for a in args_text.split(',') {
            if a.trim().is_empty() {
                continue;
            }
            args.push(parse_operand(a, &t.params, line_no)?);
        }
        if op != HidOp::Store && dst.is_none() {
            return err(line_no, format!("{op:?} needs a destination"));
        }
        if op == HidOp::Store && dst.is_some() {
            return err(line_no, "hi_store takes no destination");
        }
        t.stmts.push(Stmt { op, dst, args });
    }

    if current.is_some() {
        return err(source.lines().count(), "unterminated operator block");
    }
    Ok(dict)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MURMUR_SRC: &str = r#"
// the paper's Fig. 6(a) template, as text
operator murmurhash64(val, out) {
    data = hi_load_epi64(val)
    k    = hi_mullo_epi64(data, m:0xc6a4a7935bd1e995)
    kr   = hi_srli_epi64(k, #47)
    k2   = hi_xor_epi64(kr, k)
    k3   = hi_mullo_epi64(k2, m:0xc6a4a7935bd1e995)
    h    = hi_xor_epi64(hseed:0x42e1718915a6a087, k3)
    h2   = hi_mullo_epi64(h, m:0xc6a4a7935bd1e995)
    hr   = hi_srli_epi64(h2, #47)
    h3   = hi_xor_epi64(hr, h2)
    h4   = hi_mullo_epi64(h3, m:0xc6a4a7935bd1e995)
    hr2  = hi_srli_epi64(h4, #47)
    hval = hi_xor_epi64(hr2, h4)
    hi_store_epi64(hval, out)
}
"#;

    #[test]
    fn parses_the_murmur_template_identically_to_the_builtin() {
        let parsed = parse_template(MURMUR_SRC).unwrap();
        let builtin = crate::templates::murmur();
        assert_eq!(parsed.name, builtin.name);
        assert_eq!(parsed.params, builtin.params);
        assert_eq!(parsed.stmts.len(), builtin.stmts.len());
        for (p, b) in parsed.stmts.iter().zip(&builtin.stmts) {
            assert_eq!(p.op, b.op);
            assert_eq!(p.dst, b.dst);
            assert_eq!(p.args, b.args);
        }
    }

    #[test]
    fn parsed_template_translates_like_the_builtin() {
        let parsed = parse_template(MURMUR_SRC).unwrap();
        let builtin = crate::templates::murmur();
        let cfg = crate::HybridConfig::new(1, 3, 2);
        assert_eq!(
            crate::translate::translate(&parsed, cfg).listing(),
            crate::translate::translate(&builtin, cfg).listing()
        );
    }

    #[test]
    fn carry_and_dictionary() {
        let src = r#"
operator agg_sum(val) {
    carry acc
    d   = hi_load_epi64(val)
    acc = hi_add_epi64(acc, d)
}
operator double(val, out) {
    x = hi_load_epi64(val)
    y = hi_add_epi64(x, x)
    hi_store_epi64(y, out)
}
"#;
        let dict = parse_file(src).unwrap();
        assert_eq!(dict.len(), 2);
        assert_eq!(dict["agg_sum"].carried, vec!["acc"]);
        assert!(dict["double"].carried.is_empty());
    }

    #[test]
    fn error_cases_carry_line_numbers() {
        let e = parse_template("operator t(a) {\n  x = hi_bogus(a)\n}").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("unknown HID op"));

        let e = parse_template("operator t(a) {\n  x = hi_add_epi64(ghost, a:1)\n}")
            .unwrap_err();
        assert!(e.message.contains("undefined variable"));

        let e = parse_template("operator t(a) {\n  hi_load_epi64(a)\n}").unwrap_err();
        assert!(e.message.contains("needs a destination"));

        let e = parse_template("operator t(a) {").unwrap_err();
        assert!(e.message.contains("unterminated"));

        assert!(parse_template("x = hi_add_epi64(a, b)").is_err());
    }

    #[test]
    fn render_parse_roundtrip_for_every_builtin() {
        for family in hef_kernels::Family::ALL {
            let t = crate::templates::for_family(family);
            let text = render_template(&t);
            let back = parse_template(&text)
                .unwrap_or_else(|e| panic!("{}: {e}\n{text}", t.name));
            assert_eq!(back.name, t.name);
            assert_eq!(back.params, t.params);
            assert_eq!(back.carried, t.carried);
            assert_eq!(back.stmts, t.stmts, "{}", t.name);
        }
    }

    #[test]
    fn immediates_and_hex_constants() {
        let t = parse_template(
            "operator t(a, out) {\n  x = hi_load_epi64(a)\n  y = hi_srli_epi64(x, #8)\n  z = hi_and_epi64(y, ff:0xff)\n  hi_store_epi64(z, out)\n}",
        )
        .unwrap();
        assert_eq!(t.stmts[1].args[1], Operand::Imm(8));
        assert_eq!(t.stmts[2].args[1], Operand::Const("ff".into(), 0xff));
        // Out-of-range immediate rejected.
        assert!(parse_template(
            "operator t(a) {\n  x = hi_load_epi64(a)\n  y = hi_srli_epi64(x, #64)\n}"
        )
        .is_err());
    }
}

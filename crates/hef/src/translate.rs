//! The translator (Algorithm 1 of the paper).
//!
//! Expands an [`OperatorTemplate`] for a concrete `(v, s, p)` node into:
//!
//! * a **target-code listing** ([`translate`] → [`TargetCode`]) — C-like
//!   source in exactly the shape of the paper's Fig. 6(b)/(c): declarations
//!   first, then every statement expanded pack-major (`p` outer, `v` vector
//!   instances, then `s` scalar instances), with the paper's
//!   `name_v{i}_p{j}` / `name_s{i}_p{j}` suffix scheme and constants
//!   unrolled into exactly one scalar + one broadcast vector variable;
//! * a **µop loop trace** ([`to_loop_body`]) for the `hef-uarch` simulator,
//!   with dependency edges derived from the variable instances (including
//!   loop-carried edges for reduction accumulators).
//!
//! The executable kernels themselves are monomorphized in `hef-kernels`;
//! the listing documents what runs, and golden tests pin the expansion laws.

use std::collections::HashMap;

use hef_hid::desc::{describe, HidOp};
use hef_kernels::HybridConfig;
use hef_uarch::{Dep, LoopBody, UopClass};

use crate::error::HefError;
use crate::ir::{Operand, OperatorTemplate};

fn invalid(t: &OperatorTemplate, message: impl Into<String>) -> HefError {
    HefError::InvalidTemplate { operator: t.name.clone(), message: message.into() }
}

/// Generated target code for one `(v, s, p)` node.
#[derive(Debug, Clone)]
pub struct TargetCode {
    /// Function header line.
    pub header: String,
    /// Variable declaration lines.
    pub decls: Vec<String>,
    /// Loop-body statement lines, in emission order.
    pub body: Vec<String>,
    /// The node this code was generated for.
    pub cfg: HybridConfig,
}

impl TargetCode {
    /// The complete listing.
    pub fn listing(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header);
        out.push('\n');
        for d in &self.decls {
            out.push_str("  ");
            out.push_str(d);
            out.push('\n');
        }
        out.push_str("  for (...; ofs += step) {\n");
        for b in &self.body {
            out.push_str("    ");
            out.push_str(b);
            out.push('\n');
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Number of expanded loop-body statements.
    pub fn body_statements(&self) -> usize {
        self.body.len()
    }
}

/// One lane instance of the expansion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Lane {
    Vec { vi: usize, pi: usize },
    Scal { si: usize, pi: usize },
}

impl Lane {
    fn suffix(self) -> String {
        match self {
            Lane::Vec { vi, pi } => format!("v{vi}_p{pi}"),
            Lane::Scal { si, pi } => format!("s{si}_p{pi}"),
        }
    }

    /// Element offset of this instance within one loop step.
    fn elem_offset(self, cfg: HybridConfig) -> usize {
        const L: usize = hef_hid::LANES;
        match self {
            Lane::Vec { vi, pi } => pi * (cfg.v * L + cfg.s) + vi * L,
            Lane::Scal { si, pi } => pi * (cfg.v * L + cfg.s) + cfg.v * L + si,
        }
    }
}

/// Enumerate lane instances in Algorithm 1's order: pack-major, vector
/// instances then scalar instances.
fn lanes(cfg: HybridConfig) -> Vec<Lane> {
    let mut out = Vec::with_capacity(cfg.p * (cfg.v + cfg.s));
    for pi in 0..cfg.p {
        for vi in 0..cfg.v {
            out.push(Lane::Vec { vi, pi });
        }
        for si in 0..cfg.s {
            out.push(Lane::Scal { si, pi });
        }
    }
    out
}

fn operand_text(a: &Operand, lane: Lane) -> String {
    match a {
        Operand::Var(n) => format!("{n}_{}", lane.suffix()),
        Operand::Const(n, _) => match lane {
            Lane::Vec { .. } => format!("{n}_vc"),
            Lane::Scal { .. } => format!("{n}_c"),
        },
        Operand::Imm(k) => k.to_string(),
        Operand::Param(n) => n.clone(),
    }
}

/// Generate the target-code listing for `cfg` (Algorithm 1), with template
/// and grid problems reported as typed errors instead of panics.
pub fn try_translate(t: &OperatorTemplate, cfg: HybridConfig) -> Result<TargetCode, HefError> {
    let _span = hef_obs::trace::span_begin_labeled(
        "translate",
        &t.name,
        &[("v", cfg.v as i64), ("s", cfg.s as i64), ("p", cfg.p as i64)],
    );
    t.validate().map_err(|m| invalid(t, m))?;
    if !crate::error::on_grid(cfg.v, cfg.s, cfg.p) {
        return Err(HefError::off_grid(cfg));
    }
    let header = format!(
        "{}(const uint64_t *{}, const uint64_t size, ...) {{ // node {}",
        t.name,
        t.params.join(", const uint64_t *"),
        cfg
    );

    // Declarations: constants first (one scalar + one vector each, per the
    // paper's constant rule), then unrolled hybrid variables.
    let mut decls = Vec::new();
    for (name, value) in t.constants() {
        decls.push(format!("const uint64_t {name}_c = {value:#x};"));
        decls.push(format!("__m512i {name}_vc = _mm512_set1_epi64({name}_c);"));
    }
    for var in t.hybrid_vars() {
        for lane in lanes(cfg) {
            let ty = match lane {
                Lane::Vec { .. } => "__m512i",
                Lane::Scal { .. } => "uint64_t",
            };
            decls.push(format!("{ty} {var}_{};", lane.suffix()));
        }
    }

    // Body: each template statement expanded over all lane instances.
    let mut body = Vec::new();
    for st in &t.stmts {
        let d = describe(st.op);
        // `validate()` guarantees a destination for every non-store
        // statement; the placeholder keeps this loop panic-free.
        let dname = st.dst.as_deref().unwrap_or("_");
        for lane in lanes(cfg) {
            let off = lane.elem_offset(cfg);
            let line = match (st.op, lane) {
                (HidOp::Load, Lane::Vec { .. }) => {
                    let p = operand_text(&st.args[0], lane);
                    format!("{dname}_{} = {}({p} + ofs + {off});", lane.suffix(), d.avx512)
                }
                (HidOp::Load, Lane::Scal { .. }) => {
                    let p = operand_text(&st.args[0], lane);
                    format!("{dname}_{} = *({p} + ofs + {off});", lane.suffix())
                }
                (HidOp::Store, Lane::Vec { .. }) => {
                    let src = operand_text(&st.args[0], lane);
                    let p = operand_text(&st.args[1], lane);
                    format!("{}({p} + ofs + {off}, {src});", d.avx512)
                }
                (HidOp::Store, Lane::Scal { .. }) => {
                    let src = operand_text(&st.args[0], lane);
                    let p = operand_text(&st.args[1], lane);
                    format!("*({p} + ofs + {off}) = {src};")
                }
                (HidOp::Gather, Lane::Vec { .. }) => {
                    let base = operand_text(&st.args[0], lane);
                    let idx = operand_text(&st.args[1], lane);
                    format!("{dname}_{} = {}({idx}, {base}, 8);", lane.suffix(), d.avx512)
                }
                (HidOp::Gather, Lane::Scal { .. }) => {
                    let base = operand_text(&st.args[0], lane);
                    let idx = operand_text(&st.args[1], lane);
                    format!("{dname}_{} = {base}[{idx}];", lane.suffix())
                }
                (_, Lane::Vec { .. }) => {
                    let args: Vec<String> =
                        st.args.iter().map(|a| operand_text(a, lane)).collect();
                    format!(
                        "{dname}_{} = {}({});",
                        lane.suffix(),
                        d.avx512,
                        args.join(", ")
                    )
                }
                (op, Lane::Scal { .. }) => {
                    let dst = format!("{dname}_{}", lane.suffix());
                    let a0 = operand_text(&st.args[0], lane);
                    let scalar_op = |sym: &str| {
                        let a1 = operand_text(&st.args[1], lane);
                        format!("{dst} = {a0} {sym} {a1};")
                    };
                    match op {
                        HidOp::Add => scalar_op("+"),
                        HidOp::Sub => scalar_op("-"),
                        HidOp::Mul => scalar_op("*"),
                        HidOp::And => scalar_op("&"),
                        HidOp::Or => scalar_op("|"),
                        HidOp::Xor => scalar_op("^"),
                        HidOp::Srli | HidOp::Srlv => scalar_op(">>"),
                        HidOp::Slli | HidOp::Sllv => scalar_op("<<"),
                        HidOp::Cmp => scalar_op("=="),
                        HidOp::Blend => {
                            let m = a0;
                            let a = operand_text(&st.args[1], lane);
                            let b = operand_text(&st.args[2], lane);
                            format!("{dst} = {m} ? {b} : {a};")
                        }
                        HidOp::Set1 => format!("{dst} = {a0};"),
                        _ => unreachable!("memory ops handled above"),
                    }
                }
            };
            body.push(line);
        }
    }

    Ok(TargetCode { header, decls, body, cfg })
}

/// Panicking convenience over [`try_translate`] for known-good inputs (the
/// built-in templates on grid nodes).
pub fn translate(t: &OperatorTemplate, cfg: HybridConfig) -> TargetCode {
    try_translate(t, cfg).unwrap_or_else(|e| panic!("translate `{}`: {e}", t.name))
}

fn uop_class(op: HidOp, lane: Lane) -> Option<UopClass> {
    let vec = matches!(lane, Lane::Vec { .. });
    Some(match op {
        HidOp::Load => if vec { UopClass::VLoad } else { UopClass::SLoad },
        HidOp::Store => if vec { UopClass::VStore } else { UopClass::SStore },
        HidOp::Gather => if vec { UopClass::VGather } else { UopClass::SLoad },
        HidOp::Mul => if vec { UopClass::VMul } else { UopClass::SMul },
        HidOp::Add | HidOp::Sub | HidOp::And | HidOp::Or | HidOp::Xor => {
            if vec { UopClass::VAlu } else { UopClass::SAlu }
        }
        HidOp::Srli | HidOp::Slli | HidOp::Sllv | HidOp::Srlv => {
            if vec { UopClass::VShift } else { UopClass::SAlu }
        }
        HidOp::Cmp | HidOp::Blend => if vec { UopClass::VMask } else { UopClass::SAlu },
        HidOp::Set1 => return None, // hoisted out of the loop
    })
}

/// Build the steady-state µop trace of the expanded loop body for the
/// `hef-uarch` simulator, with template and grid problems reported as typed
/// errors instead of panics.
pub fn try_to_loop_body(t: &OperatorTemplate, cfg: HybridConfig) -> Result<LoopBody, HefError> {
    // Fine level: the simulated search calls this per cost trial.
    let _span = if hef_obs::trace::enabled_fine() {
        hef_obs::trace::span_begin_labeled(
            "to_loop_body",
            &t.name,
            &[("v", cfg.v as i64), ("s", cfg.s as i64), ("p", cfg.p as i64)],
        )
    } else {
        hef_obs::trace::SpanGuard::disabled()
    };
    t.validate().map_err(|m| invalid(t, m))?;
    if !crate::error::on_grid(cfg.v, cfg.s, cfg.p) {
        return Err(HefError::off_grid(cfg));
    }
    let lanes = lanes(cfg);

    // Pass 1: assign µop indices in emission order and record definitions
    // per (variable, lane).
    let mut uop_idx = 0usize;
    // (var, lane) -> list of (stmt index, uop index), in stmt order.
    let mut defs: HashMap<(String, Lane), Vec<(usize, usize)>> = HashMap::new();
    let mut order: Vec<(usize, Lane, UopClass)> = Vec::new();
    for (si_, st) in t.stmts.iter().enumerate() {
        for &lane in &lanes {
            let Some(class) = uop_class(st.op, lane) else { continue };
            if let Some(dst) = &st.dst {
                defs.entry((dst.clone(), lane)).or_default().push((si_, uop_idx));
            }
            order.push((si_, lane, class));
            uop_idx += 1;
        }
    }

    // Pass 2: emit µops with resolved dependency edges.
    let mut body = LoopBody::new();
    let mut cursor = 0usize;
    for (si_, st) in t.stmts.iter().enumerate() {
        for &lane in &lanes {
            if uop_class(st.op, lane).is_none() {
                continue;
            }
            let (_, _, class) = order[cursor];
            let mut deps = Vec::new();
            for a in &st.args {
                if let Operand::Var(n) = a {
                    let key = (n.clone(), lane);
                    let Some(def_list) = defs.get(&key) else {
                        return Err(invalid(t, format!("no definition for `{n}` at {lane:?}")));
                    };
                    // Most recent def strictly before this statement → same
                    // iteration; otherwise the variable is loop-carried.
                    if let Some(&(_, di)) =
                        def_list.iter().rev().find(|(dsi, _)| *dsi < si_)
                    {
                        deps.push(Dep::same(di));
                    } else if let (true, Some(&(_, di))) =
                        (t.carried.iter().any(|c| c == n), def_list.last())
                    {
                        deps.push(Dep::carried(di));
                    } else {
                        return Err(invalid(
                            t,
                            format!("use of `{n}` before definition without `carry`"),
                        ));
                    }
                }
            }
            body.push(class, deps);
            cursor += 1;
        }
    }

    // Loop overhead: induction update and the back-edge branch.
    body.push(UopClass::SAlu, vec![]);
    body.push(UopClass::Branch, vec![]);
    Ok(body)
}

/// Panicking convenience over [`try_to_loop_body`] for known-good inputs.
pub fn to_loop_body(t: &OperatorTemplate, cfg: HybridConfig) -> LoopBody {
    try_to_loop_body(t, cfg).unwrap_or_else(|e| panic!("loop body `{}`: {e}", t.name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates;

    fn cfg(v: usize, s: usize, p: usize) -> HybridConfig {
        HybridConfig::new(v, s, p)
    }

    #[test]
    fn expansion_law_statement_count() {
        // Every template statement expands to p*(v+s) instances.
        let t = templates::murmur();
        for c in [cfg(1, 3, 2), cfg(2, 0, 1), cfg(0, 1, 4)] {
            let code = translate(&t, c);
            assert_eq!(
                code.body_statements(),
                t.stmts.len() * c.p * (c.v + c.s),
                "{c}"
            );
        }
    }

    #[test]
    fn fig6_naming_scheme() {
        // The paper's Fig. 6(b): v=1, s=3, p=2 produces data_v0_p0,
        // data_s0_p0 … data_v0_p1 with the documented element offsets.
        let t = templates::murmur();
        let code = translate(&t, cfg(1, 3, 2));
        assert!(code.body[0].contains("data_v0_p0 = _mm512_loadu_si512(val + ofs + 0)"));
        assert!(code.body[1].contains("data_s0_p0 = *(val + ofs + 8)"));
        assert!(code.body[2].contains("data_s1_p0 = *(val + ofs + 9)"));
        assert!(code.body[3].contains("data_s2_p0 = *(val + ofs + 10)"));
        assert!(code.body[4].contains("data_v0_p1 = _mm512_loadu_si512(val + ofs + 11)"));
    }

    #[test]
    fn constants_unroll_to_one_scalar_and_one_vector() {
        // §IV.B: constants do not scale with (v, s, p).
        let t = templates::murmur();
        for c in [cfg(1, 1, 1), cfg(2, 4, 3)] {
            let code = translate(&t, c);
            let m_decls = code
                .decls
                .iter()
                .filter(|d| d.starts_with("const uint64_t m_c") || d.starts_with("__m512i m_vc"))
                .count();
            assert_eq!(m_decls, 2, "{c}");
        }
    }

    #[test]
    fn variable_decls_scale_with_node() {
        let t = templates::murmur();
        let c = cfg(1, 2, 2);
        let code = translate(&t, c);
        let data_decls = code
            .decls
            .iter()
            .filter(|d| d.ends_with(&"data_v0_p0;".to_string()) || d.contains(" data_"))
            .count();
        // data has p*(v+s) = 2*3 = 6 instances.
        assert_eq!(data_decls, 6);
    }

    #[test]
    fn trace_uop_counts_and_classes() {
        let t = templates::murmur();
        let c = cfg(1, 1, 1);
        let body = to_loop_body(&t, c);
        // 13 statements × (1 vec + 1 scalar) + induction + branch.
        assert_eq!(body.len(), 13 * 2 + 2);
        assert!(body.validate().is_ok());
        let vmuls = body
            .uops
            .iter()
            .filter(|u| u.class == UopClass::VMul)
            .count();
        assert_eq!(vmuls, 4);
        let smuls = body
            .uops
            .iter()
            .filter(|u| u.class == UopClass::SMul)
            .count();
        assert_eq!(smuls, 4);
    }

    #[test]
    fn trace_has_loop_carried_edge_for_accumulator() {
        let t = templates::agg_sum();
        let body = to_loop_body(&t, cfg(1, 0, 1));
        assert!(body
            .uops
            .iter()
            .any(|u| u.deps.iter().any(|d| d.back == 1)));
    }

    #[test]
    fn crc_trace_is_a_dependent_gather_chain() {
        let t = templates::crc64();
        let body = to_loop_body(&t, cfg(1, 0, 1));
        let gathers = body
            .uops
            .iter()
            .filter(|u| u.class == UopClass::VGather)
            .count();
        assert_eq!(gathers, 8);
        // With a single statement instance the chain is serial: simulating
        // it must show the latency-bound behaviour (< 0.5 IPC).
        let m = hef_uarch::CpuModel::silver_4110();
        let r = hef_uarch::simulate(&m, &body, 50);
        assert!(r.ipc < 1.5, "ipc {}", r.ipc);
    }

    #[test]
    fn packed_crc_trace_is_faster_per_element() {
        let t = templates::crc64();
        let m = hef_uarch::CpuModel::silver_4110();
        let serial = hef_uarch::simulate(&m, &to_loop_body(&t, cfg(1, 0, 1)), 50);
        let packed = hef_uarch::simulate(&m, &to_loop_body(&t, cfg(4, 0, 2)), 50);
        // Packed body does 8× the elements per iteration; cycles per element
        // must drop (paper's Fig. 3 / Table VIII story). The simulated gain
        // is smaller than on hardware because the model's scheduler already
        // overlaps consecutive iterations of the serial body.
        let serial_cpe = serial.cycles as f64 / (8.0 * 50.0);
        let packed_cpe = packed.cycles as f64 / (64.0 * 50.0);
        assert!(
            packed_cpe < serial_cpe,
            "packed {packed_cpe} vs serial {serial_cpe}"
        );
    }

    #[test]
    fn try_variants_type_the_errors() {
        let t = templates::murmur();
        // Off-grid nodes: no kernel exists, no listing is emitted.
        let e = try_translate(&t, HybridConfig { v: 3, s: 1, p: 2 }).unwrap_err();
        assert!(matches!(e, HefError::OffGrid { v: 3, s: 1, p: 2 }), "{e}");
        let e = try_to_loop_body(&t, HybridConfig { v: 1, s: 1, p: 7 }).unwrap_err();
        assert!(matches!(e, HefError::OffGrid { .. }));
        // A structurally broken template is an InvalidTemplate, not a panic.
        let bad = crate::ir::OperatorTemplate {
            name: "bad".into(),
            params: vec!["a".into()],
            carried: vec![],
            stmts: vec![crate::ir::Stmt {
                op: HidOp::Add,
                dst: Some("x".into()),
                args: vec![Operand::Var("ghost".into()), Operand::Var("ghost".into())],
            }],
        };
        let e = try_translate(&bad, cfg(1, 1, 1)).unwrap_err();
        assert!(matches!(e, HefError::InvalidTemplate { .. }), "{e}");
        let e = try_to_loop_body(&bad, cfg(1, 1, 1)).unwrap_err();
        assert!(matches!(e, HefError::InvalidTemplate { .. }), "{e}");
    }

    #[test]
    fn listing_is_printable() {
        let code = translate(&templates::murmur(), cfg(1, 3, 2));
        let text = code.listing();
        assert!(text.contains("murmurhash64"));
        assert!(text.contains("for ("));
        assert!(text.lines().count() > 20);
    }
}

//! The candidate generator (§IV.A of the paper).
//!
//! A two-stage model that produces the *initial* node for the optimizer's
//! search — not the final answer, but close enough to shrink the search:
//!
//! * **Stage 1** uses only the processor's pipeline counts: `v` = number of
//!   SIMD pipelines; `s` = scalar ALU pipelines minus the pipelines shared
//!   with SIMD (shared pipelines are treated as SIMD-exclusive, because
//!   "SIMD is more efficient than scalar in most cases under the data
//!   analytics workload").
//! * **Stage 2** sets the pack depth from the instruction tables: take the
//!   instruction with the largest latency/throughput ratio in the operator
//!   template, then
//!   `p = min{ 32 / throughput, 32 / max(s·3, v·argc) }` —
//!   32 being the number of architectural scalar/vector registers, 3 the
//!   typical register count of a scalar instruction, and `argc` the largest
//!   argument count among the template's SIMD instructions. The rationale:
//!   pack as deep as possible without spilling registers.

use hef_kernels::{HybridConfig, F_AXIS, P_AXIS, S_AXIS, V_AXIS};
use hef_uarch::{uop_cost, AccessPattern, CacheSim, CpuModel};

use crate::ir::OperatorTemplate;
use crate::translate::to_loop_body;

/// Snap `x` to the nearest value on `axis` (ties toward the smaller value).
pub fn snap_to_axis(x: usize, axis: &[usize]) -> usize {
    *axis
        .iter()
        .min_by_key(|&&a| (a.abs_diff(x), a))
        .expect("non-empty axis")
}

/// Snap a free configuration to the compiled kernel grid.
pub fn snap(cfg: HybridConfig) -> HybridConfig {
    let mut v = snap_to_axis(cfg.v, V_AXIS);
    let mut s = snap_to_axis(cfg.s, S_AXIS);
    if v + s == 0 {
        // Degenerate corner: fall back to the scalar baseline.
        v = 0;
        s = 1;
    }
    HybridConfig { v, s, p: snap_to_axis(cfg.p, P_AXIS) }
}

/// Stage 1: statement counts from pipeline counts.
pub fn stage1(model: &CpuModel) -> (usize, usize) {
    let v = model.simd_pipes();
    let s = model.scalar_alu_pipes().saturating_sub(model.shared_pipes());
    (v, s)
}

/// Stage 2: the pack rule. `v`/`s` are stage-1 outputs.
pub fn stage2(template: &OperatorTemplate, v: usize, s: usize) -> usize {
    // The instruction with the maximum latency/throughput ratio, taken from
    // the µop trace of the minimal mixed node (1, 1, 1) so both the vector
    // and the scalar lowering of every statement contribute candidates.
    let body = to_loop_body(template, HybridConfig::new(1, 1, 1));
    let _ = v; // stage 2 uses v only in the register rule below
    let max_ratio_cost = body
        .uops
        .iter()
        .map(|u| uop_cost(u.class))
        .max_by(|a, b| {
            let ra = a.latency as f64 / a.port_busy as f64;
            let rb = b.latency as f64 / b.port_busy as f64;
            ra.partial_cmp(&rb).unwrap()
        })
        .expect("non-empty trace");

    let argc = template.max_argc().max(1);
    let regs = 32usize; // architectural scalar and vector register count
    let by_throughput = regs / (max_ratio_cost.port_busy as usize).max(1);
    let by_registers = regs / (s * 3).max(v * argc).max(1);
    by_throughput.min(by_registers).max(1)
}

/// The full candidate generator: stage 1 + stage 2, snapped onto the
/// compiled grid.
pub fn initial_candidate(model: &CpuModel, template: &OperatorTemplate) -> HybridConfig {
    let (v, s) = stage1(model);
    let p = stage2(template, v, s);
    snap(HybridConfig { v: v.max(1), s, p })
}

/// Analytic seed for the probe prefetch depth `f`: the number of loop
/// iterations one serialized cache miss spans. With per-probe stall `M`
/// cycles (cache model at MLP 1) and a per-element loop body of `C` cycles
/// (µop simulator at the minimal mixed node), issuing the prefetch `M / C`
/// elements ahead gives the line just enough time to arrive — the same
/// latency ÷ throughput reasoning as stage 2, applied to the memory system.
/// Cache-resident working sets seed `f = 0` (nothing to hide). Snapped to
/// [`hef_kernels::F_AXIS`] so the optimizer can take axis steps from it.
pub fn seed_prefetch(model: &CpuModel, template: &OperatorTemplate, working_set: u64) -> usize {
    let cache = CacheSim::new(model);
    // Price a batch, not one probe, so integer miss counts don't truncate
    // the expectation to zero.
    const BATCH: u64 = 4096;
    let misses = cache.misses(AccessPattern::RandomProbe { count: BATCH, working_set });
    let stall_per_probe = cache.stall_cycles(&misses, 1.0) as f64 / BATCH as f64;
    if stall_per_probe < 1.0 {
        return 0;
    }
    let cfg = HybridConfig::new(1, 1, 1);
    let iterations = 32;
    let body = to_loop_body(template, cfg);
    let r = hef_uarch::simulate(model, &body, iterations);
    let loop_per_elem = (r.cycles as f64 / (cfg.step() * iterations) as f64).max(1.0);
    let f = (stall_per_probe / loop_per_elem).round() as usize;
    snap_to_axis(f.max(1), F_AXIS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates;

    #[test]
    fn stage1_matches_paper_descriptions() {
        // Silver 4110: one fused AVX-512 pipe, four scalar pipes, one shared
        // → (v, s) = (1, 3). The paper's tuned murmur optimum (1, 3, 2) has
        // exactly these statement counts.
        assert_eq!(stage1(&CpuModel::silver_4110()), (1, 3));
        // Gold 6240R: two AVX-512 pipes, two of the scalar pipes shared.
        assert_eq!(stage1(&CpuModel::gold_6240r()), (2, 2));
    }

    #[test]
    fn stage2_respects_register_budget() {
        let t = templates::murmur();
        // s=3 → s*3 = 9 dominates v*argc: p = min(32/3, 32/9) = 3.
        assert_eq!(stage2(&t, 1, 3), 3);
        // With huge v the register limit collapses p to 1.
        assert_eq!(stage2(&t, 8, 0), 32 / (8 * t.max_argc()).max(1));
    }

    #[test]
    fn initial_candidate_is_on_grid() {
        for m in [CpuModel::silver_4110(), CpuModel::gold_6240r()] {
            for f in hef_kernels::Family::ALL {
                let t = templates::for_family(f);
                let c = initial_candidate(&m, &t);
                assert!(V_AXIS.contains(&c.v), "{c}");
                assert!(S_AXIS.contains(&c.s), "{c}");
                assert!(P_AXIS.contains(&c.p), "{c}");
                assert!(c.v + c.s >= 1);
            }
        }
    }

    #[test]
    fn snap_chooses_nearest() {
        assert_eq!(snap_to_axis(3, V_AXIS), 2); // ties (2 vs 4) go low
        assert_eq!(snap_to_axis(7, V_AXIS), 8);
        assert_eq!(snap_to_axis(0, V_AXIS), 0);
        assert_eq!(snap_to_axis(100, P_AXIS), 4);
    }

    #[test]
    fn seed_prefetch_scales_with_working_set() {
        let m = CpuModel::silver_4110();
        let t = templates::probe();
        // L1-resident: nothing to hide.
        assert_eq!(seed_prefetch(&m, &t, 16 << 10), 0);
        // DRAM-resident: a meaningful depth, on the axis.
        let dram = seed_prefetch(&m, &t, 64 << 20);
        assert!(dram >= 4, "DRAM seed {dram}");
        assert!(F_AXIS.contains(&dram), "seed {dram} must be on F_AXIS");
        // Deeper memory (higher latency share) never seeds shallower than
        // a mostly-L2-resident set.
        let l2ish = seed_prefetch(&m, &t, 600 << 10);
        assert!(dram >= l2ish, "{dram} vs {l2ish}");
    }

    #[test]
    fn snap_never_produces_empty_config() {
        let c = snap(HybridConfig { v: 0, s: 0, p: 2 });
        assert!(c.v + c.s >= 1);
    }
}

//! Operator templates: the intermediate representation HEF operators are
//! written in.
//!
//! A template is a straight-line loop body over *hybrid variables* —
//! variables that the translator unrolls into `v` vector + `s` scalar
//! instances per pack layer — plus constants and pointer parameters, which
//! follow the paper's special rules (§IV.B): constants unroll into exactly
//! one scalar and one vector instance regardless of `(v, s, p)`; pointer
//! parameters are never unrolled.

use hef_hid::desc::HidOp;

/// An operand of a template statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Operand {
    /// A hybrid variable (unrolled per `(v, s, p)`).
    Var(String),
    /// A named constant (unrolled to one scalar + one broadcast vector).
    Const(String, u64),
    /// An immediate (shift distances; embedded into the instruction).
    Imm(u32),
    /// A pointer parameter indexed by the loop offset (`input`, `output`);
    /// never unrolled — each instance addresses its own disjoint range.
    Param(String),
}

impl Operand {
    /// Convenience constructor for variables.
    pub fn var(name: &str) -> Operand {
        Operand::Var(name.to_string())
    }

    /// Convenience constructor for named constants.
    pub fn cst(name: &str, value: u64) -> Operand {
        Operand::Const(name.to_string(), value)
    }

    /// Convenience constructor for pointer parameters.
    pub fn param(name: &str) -> Operand {
        Operand::Param(name.to_string())
    }
}

/// One template statement: `dst = op(args…)` (or `op(args…)` for stores).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stmt {
    pub op: HidOp,
    /// Destination hybrid variable (`None` for stores).
    pub dst: Option<String>,
    pub args: Vec<Operand>,
}

impl Stmt {
    pub fn new(op: HidOp, dst: Option<&str>, args: Vec<Operand>) -> Stmt {
        Stmt { op, dst: dst.map(str::to_string), args }
    }
}

/// An operator template: name, pointer parameters, loop-carried variables,
/// and the loop-body statements.
#[derive(Debug, Clone)]
pub struct OperatorTemplate {
    /// Operator name (keys the operator dictionary of §IV.B).
    pub name: String,
    /// Pointer parameters advanced by the loop (e.g. `val`, `out`).
    pub params: Vec<String>,
    /// Hybrid variables whose value feeds back into the next iteration
    /// (reduction accumulators, CRC chains). The translator turns uses of
    /// these into loop-carried dependency edges.
    pub carried: Vec<String>,
    /// The loop body.
    pub stmts: Vec<Stmt>,
}

impl OperatorTemplate {
    /// Distinct hybrid variables in definition order.
    pub fn hybrid_vars(&self) -> Vec<&str> {
        let mut seen: Vec<&str> = Vec::new();
        for st in &self.stmts {
            if let Some(d) = &st.dst {
                if !seen.contains(&d.as_str()) {
                    seen.push(d);
                }
            }
        }
        seen
    }

    /// Distinct constants `(name, value)` in first-use order.
    pub fn constants(&self) -> Vec<(&str, u64)> {
        let mut seen: Vec<(&str, u64)> = Vec::new();
        for st in &self.stmts {
            for a in &st.args {
                if let Operand::Const(n, v) = a {
                    if !seen.iter().any(|(sn, _)| sn == n) {
                        seen.push((n, *v));
                    }
                }
            }
        }
        seen
    }

    /// Largest HID-op argument count used (the `argc` of the paper's pack
    /// rule). Only value arguments count — immediates and pointer params are
    /// encoded in the instruction.
    pub fn max_argc(&self) -> usize {
        self.stmts
            .iter()
            .map(|s| {
                s.args
                    .iter()
                    .filter(|a| matches!(a, Operand::Var(_) | Operand::Const(..)))
                    .count()
                    + usize::from(s.dst.is_some())
            })
            .max()
            .unwrap_or(0)
    }

    /// Basic well-formedness: every used variable is defined earlier or is
    /// loop-carried; every carried variable is defined somewhere.
    pub fn validate(&self) -> Result<(), String> {
        let mut defined: Vec<&str> = Vec::new();
        for (i, st) in self.stmts.iter().enumerate() {
            for a in &st.args {
                if let Operand::Var(n) = a {
                    let known = defined.contains(&n.as_str())
                        || self.carried.iter().any(|c| c == n);
                    if !known {
                        return Err(format!(
                            "{}: stmt {i} uses undefined variable `{n}`",
                            self.name
                        ));
                    }
                }
            }
            if let Some(d) = &st.dst {
                if !defined.contains(&d.as_str()) {
                    defined.push(d);
                }
            }
        }
        for c in &self.carried {
            if !defined.contains(&c.as_str()) {
                return Err(format!("{}: carried variable `{c}` never defined", self.name));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hef_hid::desc::HidOp;

    fn tiny() -> OperatorTemplate {
        OperatorTemplate {
            name: "tiny".into(),
            params: vec!["val".into(), "out".into()],
            carried: vec![],
            stmts: vec![
                Stmt::new(HidOp::Load, Some("d"), vec![Operand::param("val")]),
                Stmt::new(
                    HidOp::Mul,
                    Some("k"),
                    vec![Operand::var("d"), Operand::cst("m", 3)],
                ),
                Stmt::new(HidOp::Store, None, vec![Operand::var("k"), Operand::param("out")]),
            ],
        }
    }

    #[test]
    fn hybrid_vars_and_constants_in_order() {
        let t = tiny();
        assert_eq!(t.hybrid_vars(), vec!["d", "k"]);
        assert_eq!(t.constants(), vec![("m", 3)]);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn max_argc_counts_dst_and_value_args() {
        let t = tiny();
        // mul: dst + 2 value args = 3.
        assert_eq!(t.max_argc(), 3);
    }

    #[test]
    fn validate_catches_undefined_use() {
        let t = OperatorTemplate {
            name: "bad".into(),
            params: vec![],
            carried: vec![],
            stmts: vec![Stmt::new(
                HidOp::Add,
                Some("x"),
                vec![Operand::var("ghost"), Operand::cst("one", 1)],
            )],
        };
        assert!(t.validate().is_err());
    }

    #[test]
    fn validate_accepts_carried_self_use() {
        let t = OperatorTemplate {
            name: "acc".into(),
            params: vec!["val".into()],
            carried: vec!["acc".into()],
            stmts: vec![
                Stmt::new(HidOp::Load, Some("d"), vec![Operand::param("val")]),
                Stmt::new(
                    HidOp::Add,
                    Some("acc"),
                    vec![Operand::var("acc"), Operand::var("d")],
                ),
            ],
        };
        assert!(t.validate().is_ok());
    }
}

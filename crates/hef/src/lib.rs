//! # hef-core — the Hybrid Execution Framework
//!
//! The framework of "Co-Utilizing SIMD and Scalar to Accelerate the Data
//! Analytics Workloads" (ICDE 2023), §III–IV: operators are written once in
//! the *hybrid intermediate description*; HEF finds, per processor, the best
//! mixture of `v` SIMD statements and `s` scalar statements per *pack* of
//! depth `p`, then queries are assembled from the tuned operators.
//!
//! Components (one module per box of the paper's Fig. 4):
//!
//! * [`ir`] — operator templates: small statement lists over HID ops
//!   ([`hef_hid::desc::HidOp`]) and hybrid variables.
//! * [`templates`] — the built-in operator templates (MurmurHash, CRC64,
//!   hash probe, filter, aggregation), matching the kernels compiled in
//!   `hef-kernels`.
//! * [`translate`] — the **translator** (Algorithm 1): expands a template
//!   for a concrete `(v, s, p)` into (a) a target-code listing exactly in
//!   the shape of the paper's Fig. 6(b)/(c), and (b) a µop loop trace for
//!   the `hef-uarch` simulator.
//! * [`candidate`] — the **candidate generator** (§IV.A): the two-stage
//!   model that derives the initial node from pipeline counts and the
//!   latency/throughput table, including the paper's
//!   `min{32/throughput, 32/max(s·3, v·argc)}` pack rule.
//! * [`optimizer`] — the **optimizer** (Algorithm 2): test-based neighbour
//!   search with winner/loser classification and monotone pruning, over a
//!   pluggable [`optimizer::CostEvaluator`] (measured on this machine, or
//!   simulated on a modeled CPU).
//! * [`pipeline`] — whole-pipeline joint tuning: the Algorithm-2 search
//!   lifted to the product grid of a lowered star pipeline's stages, over a
//!   co-resident cost model (shared ports, registers, line-fill buffers).
//! * [`space`] — the search-space size of §II.C (Eq. 1–2) and the pruning
//!   accounting used by the ablation benchmarks.
//! * [`tuner`] — the offline-phase facade: template + CPU → tuned
//!   configuration.
//! * [`registry`] — the persistent text format for tuned results, so the
//!   offline phase runs once per processor.
//! * [`parse`] — the textual operator-template language of §IV.B, so new
//!   operators are written as strings in a template file, exactly as the
//!   paper describes.

pub mod candidate;
pub mod error;
pub mod ir;
pub mod optimizer;
pub mod parse;
pub mod pipeline;
pub mod registry;
pub mod space;
pub mod templates;
pub mod translate;
pub mod tuner;

pub use candidate::{initial_candidate, seed_prefetch};
pub use error::{on_grid, HefError};
pub use ir::{Operand, OperatorTemplate, Stmt};
pub use optimizer::{
    optimize, optimize_probe, try_neighbors, try_probe_neighbors, CostEvaluator,
    MeasuredCost, MeasuredProbeCost, ProbeCostEvaluator, ProbeNode, ProbeSearchOutcome,
    SearchOutcome, SimulatedCost, SimulatedProbeCost, SpikedCost,
};
pub use parse::{parse_file, parse_template, render_template};
pub use pipeline::{
    compose_per_op, optimize_pipeline, pipeline_cost, try_pipeline_neighbors,
    tune_pipeline_simulated, PipelineCostEvaluator, PipelineNode, PipelineSearchOutcome,
    PipelineSpec, PipelineStage, SimulatedPipelineCost, TunedPipeline,
};
pub use registry::{PipelineEntry, Registry, RegistryIssue, WarmReport};
pub use translate::{translate, to_loop_body, try_to_loop_body, try_translate, TargetCode};
pub use tuner::{
    measure_drift, predicted_cycles_per_row, try_tune_source, try_tune_template, tune_measured,
    tune_probe_measured, tune_probe_simulated, tune_simulated, DriftRecord, TunedOperator,
    TunedProbe,
};

pub use hef_kernels::{Family, HybridConfig};

//! Persistent registry of tuned operators.
//!
//! HEF's offline phase is run once per processor; its output — the winning
//! `(v, s, p)` node per operator — is all a deployment needs ("once we get
//! the optimal implementation of hybrid execution operators, we could use
//! them to implement various queries directly without further training").
//! The registry stores that result in a small, diff-friendly text format:
//!
//! ```text
//! # hef tuned-operator registry v1
//! # cpu: Intel Xeon Silver 4110
//! # isa: avx512
//! murmur = 1 3 2
//! crc64 = 8 0 1
//! ```
//!
//! The **v2** format adds an optional fourth column to the `probe` entry —
//! the tuned software-prefetch depth `f` (`probe = 2 4 3 16`). The v2
//! header is only emitted when a depth is actually recorded, so files
//! written without one remain byte-identical v1 and old readers are never
//! broken; this reader accepts both versions, and pre-`f` probe entries
//! are back-filled by the degradation ladder with the candidate
//! generator's analytic seed ([`crate::candidate::seed_prefetch`]).
//!
//! The **v3** format adds *pipeline rows*: per-query joint configurations
//! keyed by a stable plan fingerprint (the structural hash
//! `hef-engine::StarPlan::fingerprint` computes), one stage per operator in
//! pipeline order plus the shared prefetch depth:
//!
//! ```text
//! pipeline 1f2e3d4c5b6a7980 = filter:1,3,2 probe:2,4,3 agg_sum:1,1,3 f:16
//! ```
//!
//! The v3 header is only emitted when a pipeline row exists, mirroring the
//! v2 rule, so per-op-only files stay byte-identical v2/v1. Consumers walk
//! a **degradation ladder across versions**: a missing or dropped pipeline
//! row falls back to the per-op v2/v1 entries, which in turn fall back to
//! the candidate generator's analytic seeds.
//!
//! Because a production deployment's hot path keys off this file, loading
//! is defensive at two levels:
//!
//! * [`Registry::parse`] is **strict**: malformed lines, unknown or
//!   duplicate families, off-grid `(v, s, p)` triples, and
//!   future-versioned headers are typed [`ParseError`]s.
//! * [`Registry::warm`] applies the **degradation ladder**: a bad or stale
//!   registry never panics and never changes query results. Salvageable
//!   entries are kept; off-grid or stale nodes fall back *per family* to
//!   the candidate generator's analytical pick (§IV.A, Eq. 1–2); every
//!   decision is recorded as a structured [`RegistryIssue`] in the
//!   [`WarmReport`].

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

use hef_kernels::{Family, HybridConfig, F_AXIS};

use crate::error::on_grid;
use crate::tuner::{TunedOperator, TunedProbe};

/// A set of tuned nodes, keyed by operator family.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Registry {
    entries: BTreeMap<&'static str, HybridConfig>,
    /// Tuned prefetch depths (v2 column 4) — today only `probe` carries one.
    prefetch: BTreeMap<&'static str, usize>,
    /// Joint pipeline configurations (v3 rows), keyed by plan fingerprint.
    pipelines: BTreeMap<u64, PipelineEntry>,
    /// Tune-time calibration per family (`# drift:` provenance comments):
    /// predicted (port-simulator) and measured cycles/row of the winning
    /// node, stored as milli-cycles so the registry stays `Eq`. Old readers
    /// skip these lines as ordinary comments — no version bump needed.
    drift: BTreeMap<&'static str, (u64, u64)>,
    /// Free-form provenance line (CPU name, date, …).
    pub cpu: String,
    /// ISA provenance (`avx512`, `avx2`, `emu`): the backend the nodes were
    /// tuned on. Empty when unrecorded (pre-provenance files).
    pub isa: String,
}

/// Errors from [`Registry::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// A line was not `name = v s p`.
    Malformed { line: usize, text: String },
    /// The family name is unknown.
    UnknownFamily { line: usize, name: String },
    /// The `(v, s, p)` triple is structurally invalid (`v + s == 0` or
    /// `p == 0`).
    InvalidNode { line: usize, v: usize, s: usize, p: usize },
    /// The `(v, s, p)` triple is well-formed but not on the compiled kernel
    /// grid — no kernel exists for it.
    OffGridNode { line: usize, name: String, v: usize, s: usize, p: usize },
    /// The same family appears twice.
    DuplicateFamily { line: usize, name: String },
    /// The version header names a format this build does not understand.
    UnsupportedVersion { line: usize, version: String },
    /// A fourth (prefetch-depth) column this build cannot honour: present
    /// on a family other than `probe`, or off the tuner's `f` axis.
    BadPrefetch { line: usize, name: String, f: usize },
    /// A v3 pipeline row this build cannot honour (bad fingerprint, unknown
    /// stage family, off-grid stage node, off-axis depth, no stages…).
    BadPipeline { line: usize, message: String },
    /// The same plan fingerprint appears twice.
    DuplicatePipeline { line: usize, fingerprint: String },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Malformed { line, text } => {
                write!(f, "line {line}: malformed entry `{text}`")
            }
            ParseError::UnknownFamily { line, name } => {
                write!(f, "line {line}: unknown operator family `{name}`")
            }
            ParseError::InvalidNode { line, v, s, p } => {
                write!(f, "line {line}: invalid node ({v}, {s}, {p})")
            }
            ParseError::OffGridNode { line, name, v, s, p } => {
                write!(f, "line {line}: `{name}` node ({v}, {s}, {p}) is off the compiled grid")
            }
            ParseError::DuplicateFamily { line, name } => {
                write!(f, "line {line}: duplicate entry for family `{name}`")
            }
            ParseError::UnsupportedVersion { line, version } => {
                write!(
                    f,
                    "line {line}: unsupported registry version `{version}` (this build reads v1/v2/v3)"
                )
            }
            ParseError::BadPrefetch { line, name, f: depth } => {
                write!(
                    f,
                    "line {line}: `{name}` prefetch depth {depth} rejected (probe-only; f ∈ {F_AXIS:?})"
                )
            }
            ParseError::BadPipeline { line, message } => {
                write!(f, "line {line}: bad pipeline row: {message}")
            }
            ParseError::DuplicatePipeline { line, fingerprint } => {
                write!(f, "line {line}: duplicate pipeline entry for fingerprint `{fingerprint}`")
            }
        }
    }
}

impl std::error::Error for ParseError {}

fn family_by_name(name: &str) -> Option<Family> {
    Family::ALL.into_iter().find(|f| f.name() == name)
}

/// One joint pipeline configuration (a v3 row): the per-stage hybrid nodes
/// in pipeline order plus the shared probe-prefetch depth `f`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineEntry {
    /// Stages in pipeline order, each with its tuned node.
    pub stages: Vec<(Family, HybridConfig)>,
    /// Shared software-prefetch depth (on [`hef_kernels::F_AXIS`]).
    pub f: usize,
}

impl PipelineEntry {
    /// The tuned node of the first stage of `family`, if present.
    pub fn stage(&self, family: Family) -> Option<HybridConfig> {
        self.stages.iter().find(|(fam, _)| *fam == family).map(|(_, cfg)| *cfg)
    }
}

/// Parse a v3 pipeline row body (`<16hex> = family:v,s,p … f:<depth>`).
fn parse_pipeline_row(rest: &str, line_no: usize) -> Result<Line, ParseError> {
    let bad = |message: String| ParseError::BadPipeline { line: line_no, message };
    let (fp, body) = rest
        .split_once('=')
        .ok_or_else(|| bad("expected `pipeline <fingerprint> = …`".to_string()))?;
    let fp = fp.trim();
    let fingerprint = u64::from_str_radix(fp, 16)
        .map_err(|_| bad(format!("bad fingerprint `{fp}` (expected hex)")))?;
    let mut stages = Vec::new();
    let mut depth = None;
    for tok in body.split_whitespace() {
        let (head, tail) = tok
            .split_once(':')
            .ok_or_else(|| bad(format!("bad stage token `{tok}`")))?;
        if head == "f" {
            if depth.is_some() {
                return Err(bad("duplicate `f:` token".to_string()));
            }
            let f: usize = tail
                .parse()
                .map_err(|_| bad(format!("bad depth `{tail}`")))?;
            if !F_AXIS.contains(&f) {
                return Err(bad(format!("depth {f} off the search axis {F_AXIS:?}")));
            }
            depth = Some(f);
            continue;
        }
        let family = family_by_name(head)
            .ok_or_else(|| bad(format!("unknown stage family `{head}`")))?;
        let nums: Vec<usize> = tail
            .split(',')
            .map(str::parse)
            .collect::<Result<_, _>>()
            .map_err(|_| bad(format!("bad stage node `{tok}`")))?;
        let [v, s, p] = nums[..] else {
            return Err(bad(format!("stage `{tok}` needs exactly v,s,p")));
        };
        if !on_grid(v, s, p) {
            return Err(bad(format!("stage `{tok}` node ({v}, {s}, {p}) is off the compiled grid")));
        }
        stages.push((family, HybridConfig { v, s, p }));
    }
    if stages.is_empty() {
        return Err(bad("pipeline row has no stages".to_string()));
    }
    Ok(Line::Pipeline(fingerprint, PipelineEntry { stages, f: depth.unwrap_or(0) }))
}

/// One parsed line of the registry format.
enum Line {
    Skip,
    Cpu(String),
    Isa(String),
    Drift(Family, u64, u64),
    Entry(Family, HybridConfig, Option<usize>),
    Pipeline(u64, PipelineEntry),
}

/// Parse one (already `trim`med) line. Shared by the strict and lenient
/// parsers so they cannot drift.
fn parse_line(line: &str, line_no: usize) -> Result<Line, ParseError> {
    if let Some(rest) = line.strip_prefix("# hef tuned-operator registry") {
        let version = rest.trim();
        if version.is_empty() || version == "v1" || version == "v2" || version == "v3" {
            return Ok(Line::Skip);
        }
        return Err(ParseError::UnsupportedVersion {
            line: line_no,
            version: version.to_string(),
        });
    }
    if let Some(cpu) = line.strip_prefix("# cpu:") {
        return Ok(Line::Cpu(cpu.trim().to_string()));
    }
    if let Some(isa) = line.strip_prefix("# isa:") {
        return Ok(Line::Isa(isa.trim().to_string()));
    }
    if let Some(rest) = line.strip_prefix("# drift:") {
        // Calibration provenance: `# drift: <family> = <predicted> <measured>`
        // in milli-cycles/row. Purely informational, so anything malformed
        // degrades to an ordinary comment instead of failing the load.
        if let Some((name, nums)) = rest.split_once('=') {
            if let Some(family) = family_by_name(name.trim()) {
                let vals: Vec<u64> =
                    nums.split_whitespace().filter_map(|t| t.parse().ok()).collect();
                if let [predicted, measured] = vals[..] {
                    return Ok(Line::Drift(family, predicted, measured));
                }
            }
        }
        return Ok(Line::Skip);
    }
    if line.is_empty() || line.starts_with('#') {
        return Ok(Line::Skip);
    }
    if let Some(rest) = line.strip_prefix("pipeline ") {
        return parse_pipeline_row(rest, line_no);
    }
    let (name, rest) = line
        .split_once('=')
        .ok_or_else(|| ParseError::Malformed { line: line_no, text: line.to_string() })?;
    let name = name.trim();
    let family = family_by_name(name)
        .ok_or_else(|| ParseError::UnknownFamily { line: line_no, name: name.to_string() })?;
    let nums: Vec<usize> = rest
        .split_whitespace()
        .map(str::parse)
        .collect::<Result<_, _>>()
        .map_err(|_| ParseError::Malformed { line: line_no, text: line.to_string() })?;
    let (v, s, p, pf) = match nums[..] {
        [v, s, p] => (v, s, p, None),
        [v, s, p, f] => (v, s, p, Some(f)),
        _ => return Err(ParseError::Malformed { line: line_no, text: line.to_string() }),
    };
    if v + s == 0 || p == 0 {
        return Err(ParseError::InvalidNode { line: line_no, v, s, p });
    }
    if !on_grid(v, s, p) {
        return Err(ParseError::OffGridNode {
            line: line_no,
            name: name.to_string(),
            v,
            s,
            p,
        });
    }
    if let Some(f) = pf {
        // The depth column is probe-only and must sit on the search axis,
        // mirroring the off-grid rule for (v, s, p).
        if family != Family::Probe || !F_AXIS.contains(&f) {
            return Err(ParseError::BadPrefetch { line: line_no, name: name.to_string(), f });
        }
    }
    Ok(Line::Entry(family, HybridConfig { v, s, p }, pf))
}

impl Registry {
    /// Empty registry with a provenance note.
    pub fn new(cpu: impl Into<String>) -> Registry {
        Registry { cpu: cpu.into(), ..Registry::default() }
    }

    /// Empty registry stamped with this machine's provenance: `cpu` note
    /// plus the native backend name as ISA, so a later [`Registry::warm`]
    /// on different hardware detects the staleness.
    pub fn with_host_provenance(cpu: impl Into<String>) -> Registry {
        Registry {
            cpu: cpu.into(),
            isa: hef_hid::Backend::native().name().to_string(),
            ..Registry::default()
        }
    }

    /// Record a tuned node.
    pub fn insert(&mut self, family: Family, cfg: HybridConfig) {
        self.entries.insert(family.name(), cfg);
    }

    /// Record a tuning result, including its calibration row when the tune
    /// measured this machine.
    pub fn insert_tuned(&mut self, tuned: &TunedOperator) {
        self.insert(tuned.family, tuned.cfg);
        if let Some(d) = &tuned.drift {
            self.insert_drift(tuned.family, d.predicted_cpr, d.measured_cpr);
        }
    }

    /// Record a tune-time calibration row: predicted (port-simulator) and
    /// measured cycles/row, quantized to milli-cycles.
    pub fn insert_drift(&mut self, family: Family, predicted_cpr: f64, measured_cpr: f64) {
        let q = |v: f64| (v.max(0.0) * 1000.0).round() as u64;
        self.drift.insert(family.name(), (q(predicted_cpr), q(measured_cpr)));
    }

    /// Tune-time calibration for a family as `(predicted, measured)`
    /// cycles/row, if recorded.
    pub fn get_drift(&self, family: Family) -> Option<(f64, f64)> {
        let &(p, m) = self.drift.get(family.name())?;
        Some((p as f64 / 1000.0, m as f64 / 1000.0))
    }

    /// Recorded calibration rows as `(family name, predicted, measured)`
    /// cycles/row, in name order.
    pub fn drift_rows(&self) -> impl Iterator<Item = (&'static str, f64, f64)> + '_ {
        self.drift.iter().map(|(&name, &(p, m))| (name, p as f64 / 1000.0, m as f64 / 1000.0))
    }

    /// Record a tuned prefetch depth (v2 column 4; probe-only today).
    pub fn insert_prefetch(&mut self, family: Family, f: usize) {
        self.prefetch.insert(family.name(), f);
    }

    /// Record a probe tuning result: the hybrid shape plus its depth.
    pub fn insert_tuned_probe(&mut self, tuned: &TunedProbe) {
        self.insert(Family::Probe, tuned.node.cfg);
        self.insert_prefetch(Family::Probe, tuned.node.f);
    }

    /// Tuned prefetch depth for a family, if recorded.
    pub fn get_prefetch(&self, family: Family) -> Option<usize> {
        self.prefetch.get(family.name()).copied()
    }

    /// Record a joint pipeline configuration for a plan fingerprint.
    pub fn insert_pipeline(&mut self, fingerprint: u64, entry: PipelineEntry) {
        self.pipelines.insert(fingerprint, entry);
    }

    /// Joint pipeline configuration for a plan fingerprint, if recorded.
    pub fn get_pipeline(&self, fingerprint: u64) -> Option<&PipelineEntry> {
        self.pipelines.get(&fingerprint)
    }

    /// Recorded pipeline rows, in fingerprint order.
    pub fn pipelines(&self) -> impl Iterator<Item = (u64, &PipelineEntry)> {
        self.pipelines.iter().map(|(&fp, e)| (fp, e))
    }

    /// Number of recorded pipeline rows.
    pub fn pipelines_len(&self) -> usize {
        self.pipelines.len()
    }

    /// Tuned node for a family, if recorded.
    pub fn get(&self, family: Family) -> Option<HybridConfig> {
        self.entries.get(family.name()).copied()
    }

    /// Tuned node for a family, falling back to the paper's SSB default
    /// `(1, 1, 3)`.
    pub fn get_or_default(&self, family: Family) -> HybridConfig {
        self.get(family).unwrap_or(HybridConfig { v: 1, s: 1, p: 3 })
    }

    /// Number of recorded families.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serialize to the registry text format. The v2 header (and fourth
    /// column) appear only when a prefetch depth is recorded, and the v3
    /// header only when a pipeline row is recorded, so files without those
    /// features stay byte-identical to the older formats for old readers.
    pub fn to_text(&self) -> String {
        let version = if !self.pipelines.is_empty() {
            "v3"
        } else if !self.prefetch.is_empty() {
            "v2"
        } else {
            "v1"
        };
        let mut out = format!("# hef tuned-operator registry {version}\n");
        if !self.cpu.is_empty() {
            let _ = writeln!(out, "# cpu: {}", self.cpu);
        }
        if !self.isa.is_empty() {
            let _ = writeln!(out, "# isa: {}", self.isa);
        }
        for (name, (p, m)) in &self.drift {
            let _ = writeln!(out, "# drift: {name} = {p} {m}");
        }
        for (name, cfg) in &self.entries {
            match self.prefetch.get(name) {
                Some(f) => {
                    let _ = writeln!(out, "{name} = {} {} {} {f}", cfg.v, cfg.s, cfg.p);
                }
                None => {
                    let _ = writeln!(out, "{name} = {} {} {}", cfg.v, cfg.s, cfg.p);
                }
            }
        }
        for (fp, e) in &self.pipelines {
            let _ = write!(out, "pipeline {fp:016x} =");
            for (family, cfg) in &e.stages {
                let _ = write!(out, " {}:{},{},{}", family.name(), cfg.v, cfg.s, cfg.p);
            }
            let _ = writeln!(out, " f:{}", e.f);
        }
        out
    }

    /// Parse the registry text format, strictly: the first problem is a
    /// typed error. Comments (`#`) and blank lines are ignored; `# cpu:` and
    /// `# isa:` comments are captured as provenance; CRLF line endings and
    /// trailing whitespace are tolerated.
    pub fn parse(text: &str) -> Result<Registry, ParseError> {
        let mut reg = Registry::default();
        for (i, raw) in text.lines().enumerate() {
            let line_no = i + 1;
            match parse_line(raw.trim(), line_no)? {
                Line::Skip => {}
                Line::Cpu(cpu) => reg.cpu = cpu,
                Line::Isa(isa) => reg.isa = isa,
                Line::Drift(family, p, m) => {
                    reg.drift.insert(family.name(), (p, m));
                }
                Line::Entry(family, cfg, pf) => {
                    if reg.entries.contains_key(family.name()) {
                        return Err(ParseError::DuplicateFamily {
                            line: line_no,
                            name: family.name().to_string(),
                        });
                    }
                    reg.insert(family, cfg);
                    if let Some(f) = pf {
                        reg.insert_prefetch(family, f);
                    }
                }
                Line::Pipeline(fp, entry) => {
                    if reg.pipelines.contains_key(&fp) {
                        return Err(ParseError::DuplicatePipeline {
                            line: line_no,
                            fingerprint: format!("{fp:016x}"),
                        });
                    }
                    reg.insert_pipeline(fp, entry);
                }
            }
        }
        Ok(reg)
    }

    /// Parse leniently: salvage every valid line, report every bad one.
    /// Duplicates keep the **first** occurrence (the strict parser's
    /// winner). A future-versioned header aborts salvage — the rest of the
    /// file speaks a format this build does not know.
    pub fn parse_lenient(text: &str) -> (Registry, Vec<RegistryIssue>) {
        let mut reg = Registry::default();
        let mut issues = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line_no = i + 1;
            match parse_line(raw.trim(), line_no) {
                Ok(Line::Skip) => {}
                Ok(Line::Cpu(cpu)) => reg.cpu = cpu,
                Ok(Line::Isa(isa)) => reg.isa = isa,
                Ok(Line::Drift(family, p, m)) => {
                    reg.drift.insert(family.name(), (p, m));
                }
                Ok(Line::Entry(family, cfg, pf)) => {
                    if reg.entries.contains_key(family.name()) {
                        issues.push(RegistryIssue::BadLine {
                            error: ParseError::DuplicateFamily {
                                line: line_no,
                                name: family.name().to_string(),
                            },
                        });
                    } else {
                        reg.insert(family, cfg);
                        if let Some(f) = pf {
                            reg.insert_prefetch(family, f);
                        }
                    }
                }
                Ok(Line::Pipeline(fp, entry)) => {
                    if reg.pipelines.contains_key(&fp) {
                        issues.push(RegistryIssue::BadLine {
                            error: ParseError::DuplicatePipeline {
                                line: line_no,
                                fingerprint: format!("{fp:016x}"),
                            },
                        });
                    } else {
                        reg.insert_pipeline(fp, entry);
                    }
                }
                Err(e @ ParseError::UnsupportedVersion { .. }) => {
                    return (Registry::default(), vec![RegistryIssue::BadLine { error: e }]);
                }
                Err(e) => issues.push(RegistryIssue::BadLine { error: e }),
            }
        }
        (reg, issues)
    }

    /// Write to a file, atomically: the text lands in a same-directory
    /// staging file first and is `rename`d into place, so a crash or
    /// cancelled query mid-save can never leave a torn registry behind.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        hef_testutil::atomic_write(path, self.to_text().as_bytes())
    }

    /// Read from a file (strict parse), as a typed [`HefError`].
    ///
    /// [`HefError`]: crate::HefError
    pub fn try_load(path: &Path) -> Result<Registry, crate::HefError> {
        let text = std::fs::read_to_string(path).map_err(|e| crate::HefError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        Registry::parse(&text).map_err(crate::HefError::from)
    }

    /// Read from a file (strict parse), as `std::io::Result` for callers on
    /// the I/O seam.
    pub fn load(path: &Path) -> std::io::Result<Registry> {
        let text = std::fs::read_to_string(path)?;
        Registry::parse(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Process-wide warmed registry, loaded once at first use.
    ///
    /// If `HEF_REGISTRY` names a registry file it is loaded through the
    /// degradation ladder (see [`Registry::warm_report`]); otherwise the
    /// registry is empty and [`Registry::get_or_default`] serves the
    /// paper's SSB optimum `(1, 1, 3)` for every family. Engines and
    /// benches call this at startup so repeat queries never re-tune or
    /// re-read the file. Every node served by the warmed registry is
    /// guaranteed to be on the compiled kernel grid.
    pub fn warm() -> &'static Registry {
        &Registry::warm_report().0
    }

    /// [`Registry::warm`] plus the structured [`WarmReport`] of everything
    /// the degradation ladder did:
    ///
    /// 1. unreadable file → empty registry (defaults serve every family);
    /// 2. future-versioned file → same;
    /// 3. bad lines (malformed / unknown / duplicate / off-grid) → line
    ///    dropped; off-grid families fall back to the candidate generator's
    ///    analytical pick;
    /// 4. stale ISA provenance (`# isa:` differs from the running backend)
    ///    → **every** recorded node replaced by the analytical pick.
    ///
    /// Since every grid node computes identical results, none of these
    /// degradations can change a query's output — only its speed.
    pub fn warm_report() -> &'static (Registry, WarmReport) {
        static WARM: std::sync::OnceLock<(Registry, WarmReport)> = std::sync::OnceLock::new();
        WARM.get_or_init(|| {
            let _span = hef_obs::span!("registry_warm");
            let (reg, report) = match std::env::var("HEF_REGISTRY") {
                Ok(path) if !path.trim().is_empty() => Registry::load_degraded(Path::new(&path)),
                _ => (Registry::default(), WarmReport::default()),
            };
            (reg, report)
        })
    }

    /// The degradation ladder on one file: never fails, returns the best
    /// salvageable registry plus the issue log. Fault injection
    /// (`HEF_FAULT=registry:…`) corrupts the text between read and parse.
    pub fn load_degraded(path: &Path) -> (Registry, WarmReport) {
        let _span =
            hef_obs::trace::span_begin_labeled("registry_load", &path.to_string_lossy(), &[]);
        hef_obs::metrics::add(hef_obs::metrics::Metric::RegistryLoads, 1);
        let mut report = WarmReport { source: Some(path.display().to_string()), issues: vec![] };
        // Reads go through the fault layer so HEF_FAULT=torn:/short: clauses
        // exercise this ladder; a torn tail is lossily decoded and its
        // garbage lines fall to the lenient parser below.
        let text = match hef_testutil::fault::read_file(path) {
            Ok((bytes, _mangled)) => String::from_utf8_lossy(&bytes).into_owned(),
            Err(e) => {
                report.issues.push(RegistryIssue::Unreadable {
                    path: path.display().to_string(),
                    message: e.to_string(),
                });
                report.emit_diagnostics();
                return (Registry::default(), report);
            }
        };
        let text = hef_testutil::fault::corrupt_registry(&text).unwrap_or(text);
        let (mut reg, issues) = Registry::parse_lenient(&text);
        report.issues = issues;

        // Families whose recorded node was dropped fall back to the
        // analytical pick (Eq. 1–2) for this host.
        let mut fallback_families: Vec<Family> = report
            .issues
            .iter()
            .filter_map(|i| match i {
                RegistryIssue::BadLine {
                    error: ParseError::OffGridNode { name, .. },
                } => family_by_name(name),
                _ => None,
            })
            .collect();

        // Stale ISA: the whole file was tuned for a different backend. The
        // recorded prefetch depth is dropped too — it was balanced against
        // another machine's miss latency — and re-seeded below. Pipeline
        // rows are cleared outright: a joint configuration is even more
        // machine-specific than a per-op node, and dropping a row just
        // walks consumers one rung down the ladder (per-op entries).
        let current_isa = hef_hid::Backend::native().name();
        if !reg.isa.is_empty() && reg.isa != current_isa {
            report.issues.push(RegistryIssue::StaleIsa {
                recorded: reg.isa.clone(),
                current: current_isa.to_string(),
            });
            fallback_families
                .extend(Family::ALL.into_iter().filter(|f| reg.get(*f).is_some()));
            reg.isa = current_isa.to_string();
            reg.prefetch.clear();
            reg.pipelines.clear();
            // Calibration rows pair a simulator prediction with *that*
            // machine's cycle counter; on new hardware they say nothing.
            reg.drift.clear();
        }

        fallback_families.sort_by_key(|f| f.name());
        fallback_families.dedup_by_key(|f| f.name());
        let model = hef_uarch::CpuModel::host();
        for family in fallback_families {
            let template = crate::templates::for_family(family);
            let node = crate::candidate::initial_candidate(&model, &template);
            report.issues.push(RegistryIssue::Fallback { family: family.name(), node });
            reg.insert(family, node);
        }

        // Pre-`f` (v1) probe entries: the shape is trusted but no prefetch
        // depth was ever tuned. Seed one analytically at a canonical
        // DRAM-resident working set so memory-bound probes are not left at
        // the serialized `f = 0` this field was introduced to escape.
        if reg.get(Family::Probe).is_some() && reg.get_prefetch(Family::Probe).is_none() {
            let f = crate::candidate::seed_prefetch(
                &model,
                &crate::templates::probe(),
                SEED_PREFETCH_WORKING_SET,
            );
            reg.insert_prefetch(Family::Probe, f);
            report.issues.push(RegistryIssue::SeededPrefetch { f });
        }
        report.emit_diagnostics();
        (reg, report)
    }
}

/// Canonical working set used when the ladder seeds a prefetch depth for a
/// pre-`f` registry: 64 MiB — comfortably past any LLC we model, i.e. the
/// regime where the depth matters.
const SEED_PREFETCH_WORKING_SET: u64 = 64 << 20;

/// One structured warning from the degradation ladder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryIssue {
    /// The file could not be read at all.
    Unreadable { path: String, message: String },
    /// A line was dropped (with the strict parser's diagnosis).
    BadLine { error: ParseError },
    /// The recorded ISA does not match the running backend.
    StaleIsa { recorded: String, current: String },
    /// A family was re-pointed at the candidate generator's analytical pick.
    Fallback { family: &'static str, node: HybridConfig },
    /// A pre-`f` probe entry had its prefetch depth seeded analytically.
    SeededPrefetch { f: usize },
}

impl std::fmt::Display for RegistryIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryIssue::Unreadable { path, message } => {
                write!(f, "{path}: {message}; using default nodes")
            }
            RegistryIssue::BadLine { error } => write!(f, "{error}; line dropped"),
            RegistryIssue::StaleIsa { recorded, current } => write!(
                f,
                "tuned for isa `{recorded}` but running on `{current}`; re-deriving nodes"
            ),
            RegistryIssue::Fallback { family, node } => {
                write!(f, "{family}: falling back to analytical candidate {node}")
            }
            RegistryIssue::SeededPrefetch { f: depth } => {
                write!(f, "probe: pre-f registry entry; seeded prefetch depth {depth}")
            }
        }
    }
}

/// Everything [`Registry::warm`] did to arrive at the served registry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WarmReport {
    /// The `HEF_REGISTRY` path, when one was consulted.
    pub source: Option<String>,
    /// Ladder decisions, in occurrence order.
    pub issues: Vec<RegistryIssue>,
}

impl WarmReport {
    /// `true` when the registry loaded cleanly (or no file was requested).
    ///
    /// [`RegistryIssue::SeededPrefetch`] does not count against cleanliness:
    /// a v1 file with no `f` column is a valid registry from before the
    /// prefetch dimension existed, and backfilling an analytic depth is a
    /// benign upgrade, not a degradation. It still appears in `issues` so
    /// diagnostics and counters surface it.
    pub fn is_clean(&self) -> bool {
        self.issues
            .iter()
            .all(|i| matches!(i, RegistryIssue::SeededPrefetch { .. }))
    }

    /// Route every ladder decision through the `hef_obs` sink: a `diag`
    /// warning (capturable in tests), a trace instant, and the registry
    /// counters. Called once per `load_degraded`.
    fn emit_diagnostics(&self) {
        use hef_obs::metrics::{add, Metric};
        for issue in &self.issues {
            hef_obs::diag::warn(format!("registry: {issue}"));
            hef_obs::trace::instant_labeled("registry_issue", &issue.to_string(), &[]);
            match issue {
                RegistryIssue::BadLine { .. } => add(Metric::RegistryLinesDropped, 1),
                RegistryIssue::Fallback { .. } | RegistryIssue::SeededPrefetch { .. } => {
                    add(Metric::RegistryFallbacks, 1)
                }
                RegistryIssue::StaleIsa { .. } => add(Metric::RegistryStaleIsa, 1),
                RegistryIssue::Unreadable { .. } => {}
            }
        }
    }

    /// Number of families degraded to the analytical pick.
    pub fn fallbacks(&self) -> usize {
        self.issues
            .iter()
            .filter(|i| matches!(i, RegistryIssue::Fallback { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hef_kernels::{P_AXIS, S_AXIS, V_AXIS};

    fn sample() -> Registry {
        let mut r = Registry::new("Intel Xeon Silver 4110");
        r.insert(Family::Murmur, HybridConfig::new(1, 3, 2));
        r.insert(Family::Crc64, HybridConfig::new(8, 0, 1));
        r
    }

    #[test]
    fn text_roundtrip_preserves_everything() {
        let mut r = sample();
        r.isa = "avx512".into();
        let parsed = Registry::parse(&r.to_text()).unwrap();
        assert_eq!(parsed, r);
        assert_eq!(parsed.cpu, "Intel Xeon Silver 4110");
        assert_eq!(parsed.isa, "avx512");
        assert_eq!(parsed.get(Family::Murmur), Some(HybridConfig::new(1, 3, 2)));
    }

    #[test]
    fn drift_rows_roundtrip_and_stay_comments_for_old_readers() {
        let mut r = sample();
        r.insert_drift(Family::Murmur, 2.451, 3.12);
        let text = r.to_text();
        // Still a v1 file: drift is provenance, not a format feature.
        assert!(text.starts_with("# hef tuned-operator registry v1"));
        assert!(text.contains("# drift: murmur = 2451 3120"), "{text}");
        let parsed = Registry::parse(&text).unwrap();
        assert_eq!(parsed, r);
        assert_eq!(parsed.get_drift(Family::Murmur), Some((2.451, 3.12)));
        assert_eq!(parsed.get_drift(Family::Crc64), None);
        assert_eq!(parsed.drift_rows().count(), 1);
        // Malformed drift comments degrade to ordinary comments.
        let (lenient, issues) =
            Registry::parse_lenient("# drift: murmur = nonsense\nmurmur = 1 3 2\n");
        assert!(issues.is_empty());
        assert_eq!(lenient.get_drift(Family::Murmur), None);
        assert_eq!(lenient.get(Family::Murmur), Some(HybridConfig::new(1, 3, 2)));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("hef-registry-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tuned.txt");
        let r = sample();
        r.save(&path).unwrap();
        assert_eq!(Registry::load(&path).unwrap(), r);
        assert_eq!(Registry::try_load(&path).unwrap(), r);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn try_load_types_the_io_error() {
        let e = Registry::try_load(Path::new("/nonexistent/registry.txt")).unwrap_err();
        assert!(matches!(e, crate::HefError::Io { .. }));
        assert!(e.to_string().contains("/nonexistent/registry.txt"));
    }

    #[test]
    fn defaults_for_missing_families() {
        let r = sample();
        assert_eq!(r.get(Family::Probe), None);
        assert_eq!(r.get_or_default(Family::Probe), HybridConfig::new(1, 1, 3));
        assert_eq!(r.get_or_default(Family::Crc64), HybridConfig::new(8, 0, 1));
    }

    #[test]
    fn parse_errors_are_specific() {
        assert!(matches!(
            Registry::parse("murmur 1 3 2"),
            Err(ParseError::Malformed { line: 1, .. })
        ));
        assert!(matches!(
            Registry::parse("bogus = 1 1 1"),
            Err(ParseError::UnknownFamily { line: 1, .. })
        ));
        assert!(matches!(
            Registry::parse("murmur = 0 0 2"),
            Err(ParseError::InvalidNode { line: 1, v: 0, s: 0, p: 2 })
        ));
        assert!(matches!(
            Registry::parse("murmur = 1 2"),
            Err(ParseError::Malformed { .. })
        ));
    }

    #[test]
    fn off_grid_nodes_rejected() {
        // v=3 is not on V_AXIS even though 3 is a valid s value.
        assert!(!V_AXIS.contains(&3));
        assert!(matches!(
            Registry::parse("murmur = 3 1 2"),
            Err(ParseError::OffGridNode { line: 1, v: 3, s: 1, p: 2, .. })
        ));
        // p=7 off P_AXIS, s=9 off S_AXIS.
        assert!(!P_AXIS.contains(&7) && !S_AXIS.contains(&9));
        assert!(matches!(
            Registry::parse("crc64 = 1 1 7"),
            Err(ParseError::OffGridNode { .. })
        ));
        assert!(matches!(
            Registry::parse("crc64 = 1 9 1"),
            Err(ParseError::OffGridNode { .. })
        ));
    }

    #[test]
    fn duplicate_families_rejected() {
        let e = Registry::parse("murmur = 1 3 2\nmurmur = 1 1 1").unwrap_err();
        assert!(matches!(e, ParseError::DuplicateFamily { line: 2, .. }), "{e}");
    }

    #[test]
    fn crlf_and_trailing_whitespace_tolerated() {
        let text = "# hef tuned-operator registry v1\r\n# cpu: Xeon\r\nmurmur = 1 3 2  \r\n\r\n";
        let r = Registry::parse(text).unwrap();
        assert_eq!(r.cpu, "Xeon");
        assert_eq!(r.get(Family::Murmur), Some(HybridConfig::new(1, 3, 2)));
    }

    #[test]
    fn future_version_header_is_a_clear_error() {
        let e = Registry::parse("# hef tuned-operator registry v4\nmurmur = 1 3 2").unwrap_err();
        assert!(
            matches!(e, ParseError::UnsupportedVersion { line: 1, ref version } if version == "v4"),
            "{e}"
        );
        assert!(e.to_string().contains("this build reads v1"));
        // v1, v2, v3, and the bare legacy header all parse.
        assert!(Registry::parse("# hef tuned-operator registry v1").is_ok());
        assert!(Registry::parse("# hef tuned-operator registry v2").is_ok());
        assert!(Registry::parse("# hef tuned-operator registry v3").is_ok());
        assert!(Registry::parse("# hef tuned-operator registry").is_ok());
    }

    fn sample_pipeline() -> PipelineEntry {
        PipelineEntry {
            stages: vec![
                (Family::Filter, HybridConfig::new(1, 3, 2)),
                (Family::Probe, HybridConfig::new(2, 4, 3)),
                (Family::Gather, HybridConfig::new(1, 1, 3)),
                (Family::AggSum, HybridConfig::new(1, 1, 3)),
            ],
            f: 16,
        }
    }

    #[test]
    fn v3_roundtrip_preserves_pipeline_rows() {
        let mut r = sample();
        r.insert_pipeline(0x1f2e_3d4c_5b6a_7980, sample_pipeline());
        let text = r.to_text();
        assert!(text.starts_with("# hef tuned-operator registry v3\n"), "{text}");
        assert!(
            text.contains(
                "pipeline 1f2e3d4c5b6a7980 = filter:1,3,2 probe:2,4,3 gather:1,1,3 agg_sum:1,1,3 f:16"
            ),
            "{text}"
        );
        let parsed = Registry::parse(&text).unwrap();
        assert_eq!(parsed, r);
        let e = parsed.get_pipeline(0x1f2e_3d4c_5b6a_7980).expect("row recorded");
        assert_eq!(e.f, 16);
        assert_eq!(e.stage(Family::Probe), Some(HybridConfig::new(2, 4, 3)));
        assert_eq!(e.stage(Family::Murmur), None);
        assert_eq!(parsed.pipelines_len(), 1);
        assert_eq!(parsed.get_pipeline(0xdead_beef), None);
    }

    #[test]
    fn registries_without_pipelines_never_write_v3() {
        let mut r = sample();
        r.insert_prefetch(Family::Probe, 16);
        r.insert(Family::Probe, HybridConfig::new(2, 4, 3));
        assert!(r.to_text().starts_with("# hef tuned-operator registry v2\n"));
    }

    #[test]
    fn bad_pipeline_rows_are_typed_errors() {
        // Bad fingerprint.
        let e = Registry::parse("pipeline zz = probe:1,1,3 f:0").unwrap_err();
        assert!(matches!(e, ParseError::BadPipeline { line: 1, .. }), "{e}");
        // Unknown stage family.
        let e = Registry::parse("pipeline 1 = bogus:1,1,3 f:0").unwrap_err();
        assert!(e.to_string().contains("unknown stage family"), "{e}");
        // Off-grid stage node.
        let e = Registry::parse("pipeline 1 = probe:3,1,2 f:0").unwrap_err();
        assert!(e.to_string().contains("off the compiled grid"), "{e}");
        // Off-axis depth.
        let e = Registry::parse("pipeline 1 = probe:1,1,3 f:7").unwrap_err();
        assert!(e.to_string().contains("off the search axis"), "{e}");
        // No stages.
        let e = Registry::parse("pipeline 1 = f:16").unwrap_err();
        assert!(e.to_string().contains("no stages"), "{e}");
        // Duplicate fingerprint.
        let e = Registry::parse("pipeline 1 = probe:1,1,3 f:0\npipeline 01 = filter:1,1,3 f:0")
            .unwrap_err();
        assert!(matches!(e, ParseError::DuplicatePipeline { line: 2, .. }), "{e}");
    }

    #[test]
    fn lenient_parse_drops_bad_pipeline_rows_and_keeps_the_rest() {
        let text = "murmur = 1 3 2\npipeline zz = probe:1,1,3 f:0\npipeline 2a = probe:2,4,3 f:16\n";
        let (reg, issues) = Registry::parse_lenient(text);
        assert_eq!(reg.get(Family::Murmur), Some(HybridConfig::new(1, 3, 2)));
        assert_eq!(reg.pipelines_len(), 1);
        assert!(reg.get_pipeline(0x2a).is_some());
        assert_eq!(issues.len(), 1);
        assert!(issues.iter().any(|i| matches!(
            i,
            RegistryIssue::BadLine { error: ParseError::BadPipeline { .. } }
        )));
    }

    #[test]
    fn truncated_v3_file_degrades_to_per_op_entries() {
        // A v3 file cut mid-pipeline-row (e.g. a torn write): the ladder
        // must keep the per-op entries and drop the mangled pipeline row,
        // so consumers fall back one rung (pipeline → per-op).
        let dir = std::env::temp_dir().join("hef-registry-v3trunc-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trunc.txt");
        let mut r = Registry::new("test rig");
        r.insert(Family::Probe, HybridConfig::new(2, 4, 3));
        r.insert_prefetch(Family::Probe, 16);
        r.insert_pipeline(0xabcd, sample_pipeline());
        let full = r.to_text();
        // Cut mid-token ("gather" → "gat"): the torn row must not parse.
        let cut = full.rfind("gather").unwrap() + 3;
        std::fs::write(&path, &full[..cut]).unwrap();
        let (reg, report) = Registry::load_degraded(&path);
        std::fs::remove_file(&path).ok();
        assert_eq!(reg.pipelines_len(), 0, "mangled pipeline row must drop");
        assert_eq!(reg.get(Family::Probe), Some(HybridConfig::new(2, 4, 3)));
        assert_eq!(reg.get_prefetch(Family::Probe), Some(16));
        assert!(!report.is_clean());
    }

    #[test]
    fn stale_isa_clears_pipeline_rows() {
        let dir = std::env::temp_dir().join("hef-registry-v3stale-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stale3.txt");
        let mut r = Registry::new("elsewhere");
        r.isa = "punchcards".into();
        r.insert(Family::Probe, HybridConfig::new(2, 4, 3));
        r.insert_pipeline(7, sample_pipeline());
        r.save(&path).unwrap();
        let (reg, report) = Registry::load_degraded(&path);
        std::fs::remove_file(&path).ok();
        assert!(report.issues.iter().any(|i| matches!(i, RegistryIssue::StaleIsa { .. })));
        assert_eq!(reg.pipelines_len(), 0, "stale pipelines must not survive");
        assert!(reg.get(Family::Probe).is_some(), "per-op entry re-derived, not dropped");
    }

    #[test]
    fn v2_roundtrip_preserves_prefetch_depth() {
        let mut r = sample();
        r.insert(Family::Probe, HybridConfig::new(2, 4, 3));
        r.insert_prefetch(Family::Probe, 16);
        let text = r.to_text();
        assert!(text.starts_with("# hef tuned-operator registry v2\n"), "{text}");
        assert!(text.contains("probe = 2 4 3 16"), "{text}");
        let parsed = Registry::parse(&text).unwrap();
        assert_eq!(parsed, r);
        assert_eq!(parsed.get_prefetch(Family::Probe), Some(16));
        // Families without a depth stay three-column.
        assert!(text.contains("murmur = 1 3 2\n"), "{text}");
        assert_eq!(parsed.get_prefetch(Family::Murmur), None);
    }

    #[test]
    fn registries_without_prefetch_stay_v1_on_disk() {
        // Old readers never see a v2 header unless a depth was tuned.
        let text = sample().to_text();
        assert!(text.starts_with("# hef tuned-operator registry v1\n"), "{text}");
        assert!(!text.contains(" v2"));
    }

    #[test]
    fn bad_prefetch_column_is_a_typed_error() {
        // The depth column is probe-only…
        let e = Registry::parse("murmur = 1 3 2 16").unwrap_err();
        assert!(
            matches!(e, ParseError::BadPrefetch { line: 1, f: 16, .. }),
            "{e}"
        );
        assert!(e.to_string().contains("probe-only"), "{e}");
        // …and must sit on the search axis (7 is not).
        let e = Registry::parse("probe = 1 1 3 7").unwrap_err();
        assert!(matches!(e, ParseError::BadPrefetch { f: 7, .. }), "{e}");
        // Five columns are plain malformed.
        assert!(matches!(
            Registry::parse("probe = 1 1 3 16 2"),
            Err(ParseError::Malformed { .. })
        ));
        // The lenient parser salvages the rest of the file around one.
        let (reg, issues) = Registry::parse_lenient("murmur = 1 3 2 16\ncrc64 = 8 0 1\n");
        assert_eq!(reg.get(Family::Crc64), Some(HybridConfig::new(8, 0, 1)));
        assert_eq!(reg.get(Family::Murmur), None);
        assert_eq!(issues.len(), 1);
    }

    #[test]
    fn pre_prefetch_probe_entry_gets_seeded_by_the_ladder() {
        let dir = std::env::temp_dir().join("hef-registry-seedf-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("v1-probe.txt");
        std::fs::write(
            &path,
            "# hef tuned-operator registry v1\nprobe = 2 4 3\nmurmur = 1 3 2\n",
        )
        .unwrap();
        let (reg, report) = Registry::load_degraded(&path);
        std::fs::remove_file(&path).ok();
        // The recorded shape is trusted as-is…
        assert_eq!(reg.get(Family::Probe), Some(HybridConfig::new(2, 4, 3)));
        // …but a depth was seeded, on the axis, and the decision logged.
        let f = reg.get_prefetch(Family::Probe).expect("ladder seeds a depth");
        assert!(F_AXIS.contains(&f), "seeded {f}");
        assert!(report
            .issues
            .iter()
            .any(|i| matches!(i, RegistryIssue::SeededPrefetch { .. })));
        // Non-probe families are untouched by the seeding rule.
        assert_eq!(reg.get_prefetch(Family::Murmur), None);
    }

    #[test]
    fn tuned_v2_registry_loads_cleanly_through_the_ladder() {
        let dir = std::env::temp_dir().join("hef-registry-v2clean-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("v2.txt");
        let mut r = Registry::new("test rig");
        r.insert(Family::Probe, HybridConfig::new(2, 4, 3));
        r.insert_prefetch(Family::Probe, 32);
        r.save(&path).unwrap();
        let (reg, report) = Registry::load_degraded(&path);
        std::fs::remove_file(&path).ok();
        assert!(report.is_clean(), "{:?}", report.issues);
        assert_eq!(reg.get_prefetch(Family::Probe), Some(32));
    }

    #[test]
    fn lenient_parse_salvages_good_lines() {
        let text = "murmur = 1 3 2\nbogus = 1 1 1\ncrc64 = 3 1 1\nprobe = 1 1 2\nmurmur = 2 2 2\n";
        let (reg, issues) = Registry::parse_lenient(text);
        // murmur (first), probe kept; bogus unknown, crc64 off-grid, murmur dup dropped.
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.get(Family::Murmur), Some(HybridConfig::new(1, 3, 2)));
        assert_eq!(reg.get(Family::Probe), Some(HybridConfig::new(1, 1, 2)));
        assert_eq!(issues.len(), 3);
        assert!(issues.iter().any(|i| matches!(
            i,
            RegistryIssue::BadLine { error: ParseError::OffGridNode { .. } }
        )));
    }

    #[test]
    fn lenient_parse_aborts_on_future_version() {
        let (reg, issues) = Registry::parse_lenient("# hef tuned-operator registry v9\nmurmur = 1 3 2\n");
        assert!(reg.is_empty());
        assert_eq!(issues.len(), 1);
    }

    #[test]
    fn degraded_load_replaces_off_grid_with_analytical_pick() {
        let dir = std::env::temp_dir().join("hef-registry-degraded-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("offgrid.txt");
        std::fs::write(&path, "murmur = 3 1 2\ncrc64 = 8 0 1\n").unwrap();
        let (reg, report) = Registry::load_degraded(&path);
        std::fs::remove_file(&path).ok();
        // crc64 survives untouched; murmur falls back to an on-grid pick.
        assert_eq!(reg.get(Family::Crc64), Some(HybridConfig::new(8, 0, 1)));
        let murmur = reg.get(Family::Murmur).expect("fallback node recorded");
        assert!(on_grid(murmur.v, murmur.s, murmur.p));
        assert_eq!(report.fallbacks(), 1);
        assert!(!report.is_clean());
    }

    #[test]
    fn degraded_load_handles_missing_file() {
        let (reg, report) = Registry::load_degraded(Path::new("/nonexistent/tuned.txt"));
        assert!(reg.is_empty());
        assert!(matches!(report.issues[0], RegistryIssue::Unreadable { .. }));
        // Defaults still serve every family.
        assert_eq!(reg.get_or_default(Family::Probe), HybridConfig::new(1, 1, 3));
    }

    #[test]
    fn stale_isa_rederives_every_recorded_family() {
        let dir = std::env::temp_dir().join("hef-registry-stale-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stale.txt");
        // No real backend is named `punchcards`.
        std::fs::write(&path, "# isa: punchcards\nmurmur = 1 3 2\ncrc64 = 8 0 1\n").unwrap();
        let (reg, report) = Registry::load_degraded(&path);
        std::fs::remove_file(&path).ok();
        assert!(report.issues.iter().any(|i| matches!(i, RegistryIssue::StaleIsa { .. })));
        assert_eq!(report.fallbacks(), 2);
        assert_eq!(reg.isa, hef_hid::Backend::native().name());
        for f in [Family::Murmur, Family::Crc64] {
            let n = reg.get(f).expect("replaced, not dropped");
            assert!(on_grid(n.v, n.s, n.p));
        }
    }

    #[test]
    fn host_provenance_matches_native_backend() {
        let r = Registry::with_host_provenance("this machine");
        assert_eq!(r.isa, hef_hid::Backend::native().name());
        let parsed = Registry::parse(&r.to_text()).unwrap();
        assert_eq!(parsed.isa, r.isa);
    }

    #[test]
    fn warm_is_idempotent() {
        // Two calls return the same allocation: load happens once.
        let a = Registry::warm() as *const Registry;
        let b = Registry::warm() as *const Registry;
        assert_eq!(a, b);
        if std::env::var_os("HEF_REGISTRY").is_none() {
            // Without HEF_REGISTRY every family serves the SSB default.
            assert_eq!(
                Registry::warm().get_or_default(Family::Probe),
                HybridConfig::new(1, 1, 3)
            );
            assert!(Registry::warm_report().1.is_clean());
        }
        // Whatever the ladder decided, every served node is on-grid.
        for f in Family::ALL {
            let n = Registry::warm().get_or_default(f);
            assert!(on_grid(n.v, n.s, n.p), "{}: {n}", f.name());
        }
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "\n# comment\n\nmurmur = 2 2 2\n# trailing\n";
        let r = Registry::parse(text).unwrap();
        assert_eq!(r.len(), 1);
        assert!(!r.is_empty());
    }
}

//! Persistent registry of tuned operators.
//!
//! HEF's offline phase is run once per processor; its output — the winning
//! `(v, s, p)` node per operator — is all a deployment needs ("once we get
//! the optimal implementation of hybrid execution operators, we could use
//! them to implement various queries directly without further training").
//! The registry stores that result in a small, diff-friendly text format:
//!
//! ```text
//! # hef tuned-operator registry v1
//! # cpu: Intel Xeon Silver 4110
//! murmur = 1 3 2
//! crc64 = 8 0 1
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

use hef_kernels::{Family, HybridConfig};

use crate::tuner::TunedOperator;

/// A set of tuned nodes, keyed by operator family.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Registry {
    entries: BTreeMap<&'static str, HybridConfig>,
    /// Free-form provenance line (CPU name, date, …).
    pub cpu: String,
}

/// Errors from [`Registry::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// A line was not `name = v s p`.
    Malformed { line: usize, text: String },
    /// The family name is unknown.
    UnknownFamily { line: usize, name: String },
    /// The `(v, s, p)` triple is invalid (`v + s == 0` or `p == 0`).
    InvalidNode { line: usize, v: usize, s: usize, p: usize },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Malformed { line, text } => {
                write!(f, "line {line}: malformed entry `{text}`")
            }
            ParseError::UnknownFamily { line, name } => {
                write!(f, "line {line}: unknown operator family `{name}`")
            }
            ParseError::InvalidNode { line, v, s, p } => {
                write!(f, "line {line}: invalid node ({v}, {s}, {p})")
            }
        }
    }
}

impl std::error::Error for ParseError {}

fn family_by_name(name: &str) -> Option<Family> {
    Family::ALL.into_iter().find(|f| f.name() == name)
}

impl Registry {
    /// Empty registry with a provenance note.
    pub fn new(cpu: impl Into<String>) -> Registry {
        Registry { entries: BTreeMap::new(), cpu: cpu.into() }
    }

    /// Record a tuned node.
    pub fn insert(&mut self, family: Family, cfg: HybridConfig) {
        self.entries.insert(family.name(), cfg);
    }

    /// Record a tuning result.
    pub fn insert_tuned(&mut self, tuned: &TunedOperator) {
        self.insert(tuned.family, tuned.cfg);
    }

    /// Tuned node for a family, if recorded.
    pub fn get(&self, family: Family) -> Option<HybridConfig> {
        self.entries.get(family.name()).copied()
    }

    /// Tuned node for a family, falling back to the paper's SSB default
    /// `(1, 1, 3)`.
    pub fn get_or_default(&self, family: Family) -> HybridConfig {
        self.get(family).unwrap_or(HybridConfig { v: 1, s: 1, p: 3 })
    }

    /// Number of recorded families.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serialize to the registry text format.
    pub fn to_text(&self) -> String {
        let mut out = String::from("# hef tuned-operator registry v1\n");
        if !self.cpu.is_empty() {
            let _ = writeln!(out, "# cpu: {}", self.cpu);
        }
        for (name, cfg) in &self.entries {
            let _ = writeln!(out, "{name} = {} {} {}", cfg.v, cfg.s, cfg.p);
        }
        out
    }

    /// Parse the registry text format. Comments (`#`) and blank lines are
    /// ignored; a `# cpu:` comment is captured as provenance.
    pub fn parse(text: &str) -> Result<Registry, ParseError> {
        let mut reg = Registry::default();
        for (i, raw) in text.lines().enumerate() {
            let line_no = i + 1;
            let line = raw.trim();
            if let Some(cpu) = line.strip_prefix("# cpu:") {
                reg.cpu = cpu.trim().to_string();
                continue;
            }
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (name, rest) = line.split_once('=').ok_or_else(|| ParseError::Malformed {
                line: line_no,
                text: line.to_string(),
            })?;
            let name = name.trim();
            let family =
                family_by_name(name).ok_or_else(|| ParseError::UnknownFamily {
                    line: line_no,
                    name: name.to_string(),
                })?;
            let nums: Vec<usize> = rest
                .split_whitespace()
                .map(str::parse)
                .collect::<Result<_, _>>()
                .map_err(|_| ParseError::Malformed {
                    line: line_no,
                    text: line.to_string(),
                })?;
            let [v, s, p] = nums[..] else {
                return Err(ParseError::Malformed { line: line_no, text: line.to_string() });
            };
            if v + s == 0 || p == 0 {
                return Err(ParseError::InvalidNode { line: line_no, v, s, p });
            }
            reg.insert(family, HybridConfig { v, s, p });
        }
        Ok(reg)
    }

    /// Write to a file.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_text())
    }

    /// Read from a file.
    pub fn load(path: &Path) -> std::io::Result<Registry> {
        let text = std::fs::read_to_string(path)?;
        Registry::parse(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Process-wide warmed registry, loaded once at first use.
    ///
    /// If `HEF_REGISTRY` names a registry file it is loaded (a warning is
    /// printed and the default used when it cannot be read or parsed);
    /// otherwise the registry is empty and [`Registry::get_or_default`]
    /// serves the paper's SSB optimum `(1, 1, 3)` for every family. Engines
    /// and benches call this at startup so repeat queries never re-tune or
    /// re-read the file.
    pub fn warm() -> &'static Registry {
        static WARM: std::sync::OnceLock<Registry> = std::sync::OnceLock::new();
        WARM.get_or_init(|| match std::env::var("HEF_REGISTRY") {
            Ok(path) if !path.trim().is_empty() => match Registry::load(Path::new(&path)) {
                Ok(reg) => reg,
                Err(e) => {
                    eprintln!("warning: HEF_REGISTRY={path}: {e}; using default nodes");
                    Registry::default()
                }
            },
            _ => Registry::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Registry {
        let mut r = Registry::new("Intel Xeon Silver 4110");
        r.insert(Family::Murmur, HybridConfig::new(1, 3, 2));
        r.insert(Family::Crc64, HybridConfig::new(8, 0, 1));
        r
    }

    #[test]
    fn text_roundtrip_preserves_everything() {
        let r = sample();
        let parsed = Registry::parse(&r.to_text()).unwrap();
        assert_eq!(parsed, r);
        assert_eq!(parsed.cpu, "Intel Xeon Silver 4110");
        assert_eq!(parsed.get(Family::Murmur), Some(HybridConfig::new(1, 3, 2)));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("hef-registry-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tuned.txt");
        let r = sample();
        r.save(&path).unwrap();
        assert_eq!(Registry::load(&path).unwrap(), r);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn defaults_for_missing_families() {
        let r = sample();
        assert_eq!(r.get(Family::Probe), None);
        assert_eq!(r.get_or_default(Family::Probe), HybridConfig::new(1, 1, 3));
        assert_eq!(r.get_or_default(Family::Crc64), HybridConfig::new(8, 0, 1));
    }

    #[test]
    fn parse_errors_are_specific() {
        assert!(matches!(
            Registry::parse("murmur 1 3 2"),
            Err(ParseError::Malformed { line: 1, .. })
        ));
        assert!(matches!(
            Registry::parse("bogus = 1 1 1"),
            Err(ParseError::UnknownFamily { line: 1, .. })
        ));
        assert!(matches!(
            Registry::parse("murmur = 0 0 2"),
            Err(ParseError::InvalidNode { line: 1, v: 0, s: 0, p: 2 })
        ));
        assert!(matches!(
            Registry::parse("murmur = 1 2"),
            Err(ParseError::Malformed { .. })
        ));
    }

    #[test]
    fn warm_is_idempotent() {
        // Two calls return the same allocation: load happens once.
        let a = Registry::warm() as *const Registry;
        let b = Registry::warm() as *const Registry;
        assert_eq!(a, b);
        if std::env::var_os("HEF_REGISTRY").is_none() {
            // Without HEF_REGISTRY every family serves the SSB default.
            assert_eq!(
                Registry::warm().get_or_default(Family::Probe),
                HybridConfig::new(1, 1, 3)
            );
        }
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "\n# comment\n\nmurmur = 2 2 2\n# trailing\n";
        let r = Registry::parse(text).unwrap();
        assert_eq!(r.len(), 1);
        assert!(!r.is_empty());
    }
}

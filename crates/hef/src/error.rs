//! Typed errors for the offline phase.
//!
//! Every fallible surface of `hef-core` — template parsing, translation,
//! registry loading, tuning — funnels into [`HefError`], so callers choose
//! between fail-fast (`?` / `unwrap_or_else(|e| panic!(…))`) and fallback
//! (degrade to the candidate generator's analytical pick, or to the paper's
//! SSB default node) instead of inheriting a panic from deep inside the
//! framework. The panicking convenience wrappers (`translate`,
//! `to_loop_body`, `tune_*`) still exist for infallible inputs; they are
//! thin shells over the `try_*` functions defined next to them.

use hef_kernels::{F_AXIS, P_AXIS, S_AXIS, V_AXIS};

/// Any error the offline phase can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HefError {
    /// The operator-template language failed to parse (§IV.B surface).
    Template(crate::parse::ParseError),
    /// The registry text format failed to parse.
    Registry(crate::registry::ParseError),
    /// A template is structurally invalid (undefined variable, missing
    /// destination, …) — reported by `OperatorTemplate::validate`.
    InvalidTemplate {
        operator: String,
        message: String,
    },
    /// A `(v, s, p)` node is not on the compiled kernel grid, so no kernel
    /// exists for it and the optimizer cannot take axis steps from it.
    OffGrid { v: usize, s: usize, p: usize },
    /// A prefetch depth is not on the tuner's `f` search axis
    /// ([`hef_kernels::F_AXIS`]). Any runtime depth executes fine; only the
    /// probe search needs an axis position to take steps from.
    OffAxisPrefetch { f: usize },
    /// An I/O failure, with the offending path attached.
    Io { path: String, message: String },
}

impl HefError {
    /// Build the off-grid error for a config.
    pub fn off_grid(cfg: hef_kernels::HybridConfig) -> HefError {
        HefError::OffGrid { v: cfg.v, s: cfg.s, p: cfg.p }
    }
}

impl std::fmt::Display for HefError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HefError::Template(e) => write!(f, "template parse: {e}"),
            HefError::Registry(e) => write!(f, "registry parse: {e}"),
            HefError::InvalidTemplate { operator, message } => {
                write!(f, "invalid template `{operator}`: {message}")
            }
            HefError::OffGrid { v, s, p } => write!(
                f,
                "node ({v}, {s}, {p}) is off the compiled grid (v ∈ {V_AXIS:?}, s ∈ {S_AXIS:?}, p ∈ {P_AXIS:?})"
            ),
            HefError::OffAxisPrefetch { f: depth } => write!(
                f,
                "prefetch depth {depth} is off the search axis (f ∈ {F_AXIS:?})"
            ),
            HefError::Io { path, message } => write!(f, "{path}: {message}"),
        }
    }
}

impl std::error::Error for HefError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HefError::Template(e) => Some(e),
            HefError::Registry(e) => Some(e),
            _ => None,
        }
    }
}

impl From<crate::parse::ParseError> for HefError {
    fn from(e: crate::parse::ParseError) -> HefError {
        HefError::Template(e)
    }
}

impl From<crate::registry::ParseError> for HefError {
    fn from(e: crate::registry::ParseError) -> HefError {
        HefError::Registry(e)
    }
}

/// `true` when `(v, s, p)` lies on the compiled kernel grid.
pub fn on_grid(v: usize, s: usize, p: usize) -> bool {
    V_AXIS.contains(&v) && S_AXIS.contains(&s) && P_AXIS.contains(&p) && v + s >= 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use hef_kernels::HybridConfig;

    #[test]
    fn display_is_informative() {
        let e = HefError::off_grid(HybridConfig { v: 3, s: 0, p: 9 });
        let s = e.to_string();
        assert!(s.contains("(3, 0, 9)") && s.contains("off the compiled grid"), "{s}");

        let e = HefError::InvalidTemplate { operator: "t".into(), message: "boom".into() };
        assert!(e.to_string().contains("`t`"));
    }

    #[test]
    fn on_grid_matches_all_configs() {
        for cfg in hef_kernels::all_configs() {
            assert!(on_grid(cfg.v, cfg.s, cfg.p), "{cfg}");
        }
        assert!(!on_grid(3, 0, 1));
        assert!(!on_grid(0, 0, 1));
        assert!(!on_grid(1, 1, 0));
        assert!(!on_grid(1, 1, 5));
    }

    #[test]
    fn conversions_wrap_the_source() {
        let pe = crate::parse::ParseError { line: 3, message: "x".into() };
        let he: HefError = pe.clone().into();
        assert_eq!(he, HefError::Template(pe));
        assert!(std::error::Error::source(&he).is_some());
    }
}

//! The built-in operator templates, written in the hybrid intermediate
//! description. Each corresponds 1:1 to a compiled kernel family in
//! `hef-kernels`; the statement sequences mirror the kernel bodies so the
//! translator's traces model what actually executes.

use hef_hid::desc::HidOp;
use hef_kernels::Family;

use crate::ir::{Operand, OperatorTemplate, Stmt};

use Operand::Imm;

fn var(n: &str) -> Operand {
    Operand::var(n)
}
fn cst(n: &str, v: u64) -> Operand {
    Operand::cst(n, v)
}
fn param(n: &str) -> Operand {
    Operand::param(n)
}

/// The MurmurHash template (the paper's Fig. 6(a) hash-value computation).
pub fn murmur() -> OperatorTemplate {
    use hef_kernels::murmur::{M, R, SEED};
    OperatorTemplate {
        name: "murmurhash64".into(),
        params: vec!["val".into(), "out".into()],
        carried: vec![],
        stmts: vec![
            Stmt::new(HidOp::Load, Some("data"), vec![param("val")]),
            Stmt::new(HidOp::Mul, Some("k"), vec![var("data"), cst("m", M)]),
            Stmt::new(HidOp::Srli, Some("kr"), vec![var("k"), Imm(R)]),
            Stmt::new(HidOp::Xor, Some("k2"), vec![var("kr"), var("k")]),
            Stmt::new(HidOp::Mul, Some("k3"), vec![var("k2"), cst("m", M)]),
            Stmt::new(HidOp::Xor, Some("h"), vec![cst("hseed", SEED ^ M), var("k3")]),
            Stmt::new(HidOp::Mul, Some("h2"), vec![var("h"), cst("m", M)]),
            Stmt::new(HidOp::Srli, Some("hr"), vec![var("h2"), Imm(R)]),
            Stmt::new(HidOp::Xor, Some("h3"), vec![var("hr"), var("h2")]),
            Stmt::new(HidOp::Mul, Some("h4"), vec![var("h3"), cst("m", M)]),
            Stmt::new(HidOp::Srli, Some("hr2"), vec![var("h4"), Imm(R)]),
            Stmt::new(HidOp::Xor, Some("hval"), vec![var("hr2"), var("h4")]),
            Stmt::new(HidOp::Store, None, vec![var("hval"), param("out")]),
        ],
    }
}

/// The CRC64 template: one load, eight dependent table rounds, one store.
pub fn crc64() -> OperatorTemplate {
    let mut stmts = vec![
        Stmt::new(HidOp::Load, Some("v0"), vec![param("val")]),
        // crc starts at zero; model the zeroing as a (hoistable) xor with
        // itself is unnecessary — rounds reference the previous crc var.
        Stmt::new(HidOp::Xor, Some("crc0"), vec![cst("zero", 0), cst("zero", 0)]),
    ];
    for r in 0..8u32 {
        let crc_in = format!("crc{r}");
        let v_in = format!("v{r}");
        stmts.push(Stmt::new(
            HidOp::Xor,
            Some(&format!("x{r}")),
            vec![var(&crc_in), var(&v_in)],
        ));
        stmts.push(Stmt::new(
            HidOp::And,
            Some(&format!("idx{r}")),
            vec![var(&format!("x{r}")), cst("ff", 0xff)],
        ));
        stmts.push(Stmt::new(
            HidOp::Gather,
            Some(&format!("t{r}")),
            vec![param("table"), var(&format!("idx{r}"))],
        ));
        stmts.push(Stmt::new(
            HidOp::Srli,
            Some(&format!("cs{r}")),
            vec![var(&crc_in), Imm(8)],
        ));
        stmts.push(Stmt::new(
            HidOp::Xor,
            Some(&format!("crc{}", r + 1)),
            vec![var(&format!("t{r}")), var(&format!("cs{r}"))],
        ));
        stmts.push(Stmt::new(
            HidOp::Srli,
            Some(&format!("v{}", r + 1)),
            vec![var(&v_in), Imm(8)],
        ));
    }
    stmts.push(Stmt::new(HidOp::Store, None, vec![var("crc8"), param("out")]));
    OperatorTemplate {
        name: "crc64".into(),
        params: vec!["val".into(), "table".into(), "out".into()],
        carried: vec![],
        stmts,
    }
}

/// The hash-probe template: murmur-hash the key, mask to a slot, gather the
/// slot key and payload, compare, blend.
pub fn probe() -> OperatorTemplate {
    use hef_kernels::murmur::{M, R, SEED};
    OperatorTemplate {
        name: "hash_probe".into(),
        params: vec!["keys".into(), "tkeys".into(), "tvals".into(), "out".into()],
        carried: vec![],
        stmts: vec![
            Stmt::new(HidOp::Load, Some("key"), vec![param("keys")]),
            Stmt::new(HidOp::Mul, Some("k"), vec![var("key"), cst("m", M)]),
            Stmt::new(HidOp::Srli, Some("kr"), vec![var("k"), Imm(R)]),
            Stmt::new(HidOp::Xor, Some("k2"), vec![var("kr"), var("k")]),
            Stmt::new(HidOp::Mul, Some("k3"), vec![var("k2"), cst("m", M)]),
            Stmt::new(HidOp::Xor, Some("h"), vec![cst("hseed", SEED ^ M), var("k3")]),
            Stmt::new(HidOp::Mul, Some("h2"), vec![var("h"), cst("m", M)]),
            Stmt::new(HidOp::Srli, Some("hr"), vec![var("h2"), Imm(R)]),
            Stmt::new(HidOp::Xor, Some("h3"), vec![var("hr"), var("h2")]),
            Stmt::new(HidOp::Mul, Some("h4"), vec![var("h3"), cst("m", M)]),
            Stmt::new(HidOp::Srli, Some("hr2"), vec![var("h4"), Imm(R)]),
            Stmt::new(HidOp::Xor, Some("hv"), vec![var("hr2"), var("h4")]),
            Stmt::new(HidOp::And, Some("slot"), vec![var("hv"), cst("mask", 0xffff)]),
            Stmt::new(HidOp::Gather, Some("skey"), vec![param("tkeys"), var("slot")]),
            Stmt::new(HidOp::Gather, Some("sval"), vec![param("tvals"), var("slot")]),
            Stmt::new(HidOp::Cmp, Some("hit"), vec![var("skey"), var("key")]),
            Stmt::new(
                HidOp::Blend,
                Some("res"),
                vec![var("hit"), cst("miss", u64::MAX - 1), var("sval")],
            ),
            Stmt::new(HidOp::Store, None, vec![var("res"), param("out")]),
        ],
    }
}

/// The range-filter template: two compares and a (mask-guarded) store of the
/// qualifying row ids.
pub fn filter() -> OperatorTemplate {
    OperatorTemplate {
        name: "filter_range".into(),
        params: vec!["col".into(), "sel".into()],
        carried: vec![],
        stmts: vec![
            Stmt::new(HidOp::Load, Some("x"), vec![param("col")]),
            Stmt::new(HidOp::Cmp, Some("ge"), vec![var("x"), cst("lo", 0)]),
            Stmt::new(HidOp::Cmp, Some("le"), vec![var("x"), cst("hi", 0)]),
            Stmt::new(HidOp::And, Some("m"), vec![var("ge"), var("le")]),
            Stmt::new(HidOp::Add, Some("ids"), vec![cst("iota", 0), cst("base", 0)]),
            Stmt::new(HidOp::Blend, Some("outv"), vec![var("m"), var("ids"), var("ids")]),
            Stmt::new(HidOp::Store, None, vec![var("outv"), param("sel")]),
        ],
    }
}

/// The sum-aggregation template (loop-carried accumulator).
pub fn agg_sum() -> OperatorTemplate {
    OperatorTemplate {
        name: "agg_sum".into(),
        params: vec!["val".into()],
        carried: vec!["acc".into()],
        stmts: vec![
            Stmt::new(HidOp::Load, Some("d"), vec![param("val")]),
            Stmt::new(HidOp::Add, Some("acc"), vec![var("acc"), var("d")]),
        ],
    }
}

/// The dot-aggregation template (`acc += a*b`).
pub fn agg_dot() -> OperatorTemplate {
    OperatorTemplate {
        name: "agg_dot".into(),
        params: vec!["a".into(), "b".into()],
        carried: vec!["acc".into()],
        stmts: vec![
            Stmt::new(HidOp::Load, Some("x"), vec![param("a")]),
            Stmt::new(HidOp::Load, Some("y"), vec![param("b")]),
            Stmt::new(HidOp::Mul, Some("xy"), vec![var("x"), var("y")]),
            Stmt::new(HidOp::Add, Some("acc"), vec![var("acc"), var("xy")]),
        ],
    }
}

/// The Bloom membership-check template: two murmur hashes, two word
/// gathers, two bit tests.
pub fn bloom() -> OperatorTemplate {
    use hef_kernels::murmur::{M, R, SEED};
    let mut stmts = vec![Stmt::new(HidOp::Load, Some("key"), vec![param("keys")])];
    // Two hash chains (different seeds), each ending in a gather + bit test.
    for (i, seed) in [SEED ^ M, 0x9e37_79b9_7f4a_7c15 ^ M].into_iter().enumerate() {
        let sfx = |n: &str| format!("{n}{i}");
        stmts.extend([
            Stmt::new(HidOp::Mul, Some(&sfx("k")), vec![var("key"), cst("m", M)]),
            Stmt::new(HidOp::Srli, Some(&sfx("kr")), vec![var(&sfx("k")), Imm(R)]),
            Stmt::new(HidOp::Xor, Some(&sfx("k2")), vec![var(&sfx("kr")), var(&sfx("k"))]),
            Stmt::new(HidOp::Mul, Some(&sfx("k3")), vec![var(&sfx("k2")), cst("m", M)]),
            Stmt::new(
                HidOp::Xor,
                Some(&sfx("h")),
                vec![cst(if i == 0 { "hseed1" } else { "hseed2" }, seed), var(&sfx("k3"))],
            ),
            Stmt::new(HidOp::Mul, Some(&sfx("h2")), vec![var(&sfx("h")), cst("m", M)]),
            Stmt::new(HidOp::Srli, Some(&sfx("hr")), vec![var(&sfx("h2")), Imm(R)]),
            Stmt::new(HidOp::Xor, Some(&sfx("hv")), vec![var(&sfx("hr")), var(&sfx("h2"))]),
            Stmt::new(
                HidOp::And,
                Some(&sfx("widx")),
                vec![var(&sfx("hv")), cst("wmask", 0xffff)],
            ),
            Stmt::new(
                HidOp::Gather,
                Some(&sfx("word")),
                vec![param("words"), var(&sfx("widx"))],
            ),
            Stmt::new(
                HidOp::And,
                Some(&sfx("bpos")),
                vec![var(&sfx("hv")), cst("c63", 63)],
            ),
            Stmt::new(
                HidOp::Sllv,
                Some(&sfx("bit")),
                vec![cst("one", 1), var(&sfx("bpos"))],
            ),
            Stmt::new(
                HidOp::And,
                Some(&sfx("hit")),
                vec![var(&sfx("word")), var(&sfx("bit"))],
            ),
        ]);
    }
    stmts.push(Stmt::new(HidOp::And, Some("both"), vec![var("hit0"), var("hit1")]));
    stmts.push(Stmt::new(HidOp::Cmp, Some("res"), vec![var("both"), cst("zero", 0)]));
    stmts.push(Stmt::new(HidOp::Store, None, vec![var("res"), param("out")]));
    OperatorTemplate {
        name: "bloom_check".into(),
        params: vec!["keys".into(), "words".into(), "out".into()],
        carried: vec![],
        stmts,
    }
}

/// The selective-gather template: load an index vector, gather, store.
pub fn gather() -> OperatorTemplate {
    OperatorTemplate {
        name: "gather_take".into(),
        params: vec!["idx".into(), "src".into(), "out".into()],
        carried: vec![],
        stmts: vec![
            Stmt::new(HidOp::Load, Some("i"), vec![param("idx")]),
            Stmt::new(HidOp::Gather, Some("g"), vec![param("src"), var("i")]),
            Stmt::new(HidOp::Store, None, vec![var("g"), param("out")]),
        ],
    }
}

/// The compressed-decode template: compute each element's bit offset,
/// gather the two straddled packed words, stitch and mask the code, then
/// gather the dictionary value — mirroring `hef_kernels::decode::body`.
pub fn decode() -> OperatorTemplate {
    OperatorTemplate {
        name: "page_decode".into(),
        params: vec!["words".into(), "dict".into(), "out".into()],
        carried: vec![],
        stmts: vec![
            Stmt::new(HidOp::Add, Some("idx"), vec![cst("iota", 0), cst("base", 0)]),
            Stmt::new(HidOp::Mul, Some("bit"), vec![var("idx"), cst("w", 13)]),
            Stmt::new(HidOp::Srli, Some("wi"), vec![var("bit"), Imm(6)]),
            Stmt::new(HidOp::And, Some("sh"), vec![var("bit"), cst("c63", 63)]),
            Stmt::new(HidOp::Gather, Some("w0"), vec![param("words"), var("wi")]),
            Stmt::new(HidOp::Srlv, Some("lo"), vec![var("w0"), var("sh")]),
            Stmt::new(HidOp::Add, Some("wi1"), vec![var("wi"), cst("one", 1)]),
            Stmt::new(HidOp::Gather, Some("w1"), vec![param("words"), var("wi1")]),
            Stmt::new(HidOp::Sub, Some("shr"), vec![cst("c64", 64), var("sh")]),
            Stmt::new(HidOp::Sllv, Some("hi"), vec![var("w1"), var("shr")]),
            Stmt::new(HidOp::Or, Some("v"), vec![var("lo"), var("hi")]),
            Stmt::new(HidOp::And, Some("code"), vec![var("v"), cst("mask", 0x1fff)]),
            Stmt::new(HidOp::Gather, Some("val"), vec![param("dict"), var("code")]),
            Stmt::new(HidOp::Store, None, vec![var("val"), param("out")]),
        ],
    }
}

/// The template for a kernel family.
pub fn for_family(family: Family) -> OperatorTemplate {
    match family {
        Family::Murmur => murmur(),
        Family::Crc64 => crc64(),
        Family::Probe => probe(),
        Family::Filter => filter(),
        Family::AggSum => agg_sum(),
        Family::AggDot => agg_dot(),
        Family::BloomCheck => bloom(),
        Family::Gather => gather(),
        Family::Decode => decode(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_templates_validate() {
        for f in Family::ALL {
            let t = for_family(f);
            t.validate().unwrap_or_else(|e| panic!("{}: {e}", t.name));
            assert!(!t.stmts.is_empty());
        }
    }

    #[test]
    fn murmur_has_four_multiplies() {
        let t = murmur();
        let muls = t
            .stmts
            .iter()
            .filter(|s| s.op == hef_hid::desc::HidOp::Mul)
            .count();
        assert_eq!(muls, 4);
    }

    #[test]
    fn crc64_has_eight_gathers() {
        let t = crc64();
        let gathers = t
            .stmts
            .iter()
            .filter(|s| s.op == hef_hid::desc::HidOp::Gather)
            .count();
        assert_eq!(gathers, 8);
    }

    #[test]
    fn agg_templates_are_loop_carried() {
        assert_eq!(agg_sum().carried, vec!["acc"]);
        assert_eq!(agg_dot().carried, vec!["acc"]);
    }

    #[test]
    fn probe_argc_is_three() {
        // blend(dst, mask, a, b) has the most slots, but only dst + 3 value
        // args count; gather has dst + idx + pointer param → 2.
        assert_eq!(probe().max_argc(), 4);
    }
}

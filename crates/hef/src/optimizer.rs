//! The optimizer (Algorithm 2 of the paper): test-based neighbour search
//! with winner/loser classification and monotone pruning.
//!
//! Starting from the candidate generator's initial node, the optimizer
//! repeatedly expands the cheapest known node: every untested neighbour
//! (one step along the `v`, `s`, or `p` axis of the compiled grid) is
//! generated and timed. Neighbours faster than the expanded node join the
//! candidate list and will be expanded in turn; slower neighbours go to the
//! end list and **their variants are never generated** — the pruning that
//! §IV.C justifies with the observed monotonicity of the runtime on either
//! side of the optimum. The search ends when the candidate list is empty,
//! and because the neighbour relation keeps the grid strongly connected,
//! the best tested node is the grid optimum for monotone cost surfaces.

use std::collections::HashMap;

use hef_kernels::{
    all_configs, BloomFilter, Family, HybridConfig, KernelIo, ProbeTable, P_AXIS, S_AXIS,
    V_AXIS,
};
use hef_uarch::CpuModel;

use crate::ir::OperatorTemplate;
use crate::translate::to_loop_body;

/// Something that can price a configuration (lower is better).
pub trait CostEvaluator {
    /// Cost of running the operator at `cfg` (seconds, cycles per element —
    /// any consistent unit).
    fn cost(&mut self, cfg: HybridConfig) -> f64;
}

/// The result of a search.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The best configuration found.
    pub best: HybridConfig,
    /// Its cost.
    pub best_cost: f64,
    /// Every tested node with its cost, in test order.
    pub tested: Vec<(HybridConfig, f64)>,
    /// Nodes classified as losers (the end list).
    pub end_list: Vec<HybridConfig>,
}

impl SearchOutcome {
    /// Grid nodes never generated or tested.
    pub fn pruned(&self) -> usize {
        all_configs().count() - self.tested.len()
    }
}

fn axis_neighbors(x: usize, axis: &[usize]) -> Vec<usize> {
    let i = axis.iter().position(|&a| a == x).expect("value on axis");
    let mut out = Vec::new();
    if i > 0 {
        out.push(axis[i - 1]);
    }
    if i + 1 < axis.len() {
        out.push(axis[i + 1]);
    }
    out
}

/// Neighbours of `cfg` on the compiled grid: one axis step in `v`, `s`, or
/// `p`, excluding the empty `(0,0,·)` column.
pub fn neighbors(cfg: HybridConfig) -> Vec<HybridConfig> {
    let mut out = Vec::new();
    for v in axis_neighbors(cfg.v, V_AXIS) {
        if v + cfg.s >= 1 {
            out.push(HybridConfig { v, ..cfg });
        }
    }
    for s in axis_neighbors(cfg.s, S_AXIS) {
        if cfg.v + s >= 1 {
            out.push(HybridConfig { s, ..cfg });
        }
    }
    for p in axis_neighbors(cfg.p, P_AXIS) {
        out.push(HybridConfig { p, ..cfg });
    }
    out
}

/// Run Algorithm 2 from `initial`.
pub fn optimize(initial: HybridConfig, eval: &mut dyn CostEvaluator) -> SearchOutcome {
    let initial = crate::candidate::snap(initial);
    let mut costs: HashMap<HybridConfig, f64> = HashMap::new();
    let mut order: Vec<(HybridConfig, f64)> = Vec::new();
    let mut end_list: Vec<HybridConfig> = Vec::new();

    let c0 = eval.cost(initial);
    costs.insert(initial, c0);
    order.push((initial, c0));

    // Candidate list of nodes to expand, kept sorted by ascending cost so
    // the most promising node is expanded first.
    let mut candidates = vec![initial];
    let mut expanded: Vec<HybridConfig> = Vec::new();

    while let Some(pos) = candidates
        .iter()
        .enumerate()
        .min_by(|a, b| costs[a.1].partial_cmp(&costs[b.1]).unwrap())
        .map(|(i, _)| i)
    {
        let node = candidates.swap_remove(pos);
        if expanded.contains(&node) {
            continue;
        }
        expanded.push(node);
        let node_cost = costs[&node];

        for n in neighbors(node) {
            if costs.contains_key(&n) {
                continue;
            }
            let c = eval.cost(n);
            costs.insert(n, c);
            order.push((n, c));
            if c < node_cost {
                candidates.push(n); // winner: expand its variants later
            } else {
                end_list.push(n); // loser: variants pruned
            }
        }
    }

    let (&best, &best_cost) = costs
        .iter()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .expect("at least the initial node was tested");
    SearchOutcome { best, best_cost, tested: order, end_list }
}

/// Exhaustive baseline: test every grid node (the cost the pruning avoids).
pub fn exhaustive(eval: &mut dyn CostEvaluator) -> SearchOutcome {
    let mut order = Vec::new();
    for cfg in all_configs() {
        let c = eval.cost(cfg);
        order.push((cfg, c));
    }
    let &(best, best_cost) = order
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .expect("grid non-empty");
    SearchOutcome { best, best_cost, tested: order, end_list: Vec::new() }
}

/// Prices a node by simulating its translated µop trace on a CPU model —
/// the offline tuning path for processors we do not have.
pub struct SimulatedCost<'a> {
    pub model: &'a CpuModel,
    pub template: &'a OperatorTemplate,
    /// Steady-state iterations to simulate.
    pub iterations: usize,
}

impl<'a> SimulatedCost<'a> {
    pub fn new(model: &'a CpuModel, template: &'a OperatorTemplate) -> Self {
        SimulatedCost { model, template, iterations: 60 }
    }
}

impl CostEvaluator for SimulatedCost<'_> {
    fn cost(&mut self, cfg: HybridConfig) -> f64 {
        let body = to_loop_body(self.template, cfg);
        let r = hef_uarch::simulate(self.model, &body, self.iterations);
        let elems = (cfg.step() * self.iterations) as f64;
        // Nanoseconds per element: cycles / frequency, normalized per element
        // so different step widths are comparable.
        let ghz = hef_uarch::freq::frequency_ghz(self.model, &body);
        r.cycles as f64 / ghz / elems
    }
}

/// Prices a node by actually running the compiled kernel on this machine
/// (the paper's primary, test-based path).
pub struct MeasuredCost {
    family: Family,
    input: Vec<u64>,
    input2: Vec<u64>,
    output: Vec<u64>,
    table: Option<ProbeTable>,
    bloom: Option<BloomFilter>,
    /// Timing trials per node; the minimum is used.
    pub trials: usize,
}

impl MeasuredCost {
    /// Build an evaluator with `n` elements of synthetic input.
    pub fn new(family: Family, n: usize) -> Self {
        let input: Vec<u64> = (0..n as u64)
            .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1))
            .collect();
        let input2: Vec<u64> = (0..n as u64).map(|i| (i % 97) + 1).collect();
        let table = match family {
            Family::Probe => {
                let mut t = ProbeTable::with_capacity(n / 16 + 1);
                for k in 0..(n as u64 / 16) {
                    t.insert(k * 2 + 1, k + 1);
                }
                Some(t)
            }
            _ => None,
        };
        let bloom = match family {
            Family::BloomCheck => {
                let mut f = BloomFilter::with_capacity(n / 16 + 1);
                for k in 0..(n as u64 / 16) {
                    f.insert(k * 2 + 1);
                }
                Some(f)
            }
            _ => None,
        };
        MeasuredCost {
            family,
            output: vec![0u64; n],
            input,
            input2,
            table,
            bloom,
            trials: 3,
        }
    }

    fn run_once(&mut self, cfg: HybridConfig) -> bool {
        let mut sel = Vec::new();
        let mut acc = 0u64;
        let mut io = match self.family {
            Family::Murmur | Family::Crc64 => KernelIo::Map {
                input: &self.input,
                output: &mut self.output,
            },
            Family::Probe => KernelIo::Probe {
                keys: &self.input2, // small-domain keys: mixture of hits
                table: self.table.as_ref().expect("probe table built"),
                out: &mut self.output,
            },
            Family::Filter => KernelIo::Filter {
                input: &self.input2,
                lo: 10,
                hi: 60,
                base: 0,
                sel: &mut sel,
            },
            Family::AggSum => KernelIo::AggSum { a: &self.input, acc: &mut acc },
            Family::AggDot => KernelIo::AggDot {
                a: &self.input,
                b: &self.input2,
                acc: &mut acc,
            },
            Family::BloomCheck => KernelIo::Bloom {
                keys: &self.input2,
                filter: self.bloom.as_ref().expect("bloom filter built"),
                out: &mut self.output,
            },
            Family::Gather => KernelIo::Gather {
                src: &self.input,
                idx: &self.input2, // values < 97 < n: always in bounds
                out: &mut self.output,
            },
        };
        hef_kernels::run(self.family, cfg, &mut io)
    }
}

impl CostEvaluator for MeasuredCost {
    fn cost(&mut self, cfg: HybridConfig) -> f64 {
        // Probe once: off-grid nodes are infinitely expensive.
        if !self.run_once(cfg) {
            return f64::INFINITY;
        }
        // Shared clock discipline with the bench harness: warm-up run,
        // then best-of-`trials` wall time.
        hef_testutil::time_best_of(self.trials, || {
            self.run_once(cfg);
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A convex synthetic cost surface with a known optimum.
    struct Synthetic {
        opt: HybridConfig,
        calls: usize,
    }

    impl CostEvaluator for Synthetic {
        fn cost(&mut self, cfg: HybridConfig) -> f64 {
            self.calls += 1;
            let vd = (V_AXIS.iter().position(|&x| x == cfg.v).unwrap() as f64
                - V_AXIS.iter().position(|&x| x == self.opt.v).unwrap() as f64)
                .abs();
            let sd = (cfg.s as f64 - self.opt.s as f64).abs();
            let pd = (cfg.p as f64 - self.opt.p as f64).abs();
            1.0 + vd + sd + pd
        }
    }

    #[test]
    fn finds_the_optimum_of_a_convex_surface() {
        for opt in [
            HybridConfig::new(1, 3, 2),
            HybridConfig::new(8, 0, 1),
            HybridConfig::new(1, 1, 3),
        ] {
            let mut eval = Synthetic { opt, calls: 0 };
            let out = optimize(HybridConfig::new(1, 1, 1), &mut eval);
            assert_eq!(out.best, opt, "from (1,1,1)");
            assert!(
                out.tested.len() < all_configs().count(),
                "search must prune"
            );
        }
    }

    #[test]
    fn pruning_tests_far_fewer_nodes_than_exhaustive() {
        let mut eval = Synthetic { opt: HybridConfig::new(1, 3, 2), calls: 0 };
        let pruned = optimize(HybridConfig::new(2, 2, 2), &mut eval);
        let tested = pruned.tested.len();
        let total = all_configs().count();
        assert!(
            tested * 2 < total,
            "tested {tested} of {total} — pruning ineffective"
        );
        assert_eq!(pruned.pruned(), total - tested);
    }

    #[test]
    fn neighbors_step_one_axis_position() {
        let n = neighbors(HybridConfig::new(2, 2, 2));
        assert!(n.contains(&HybridConfig::new(1, 2, 2)));
        assert!(n.contains(&HybridConfig::new(4, 2, 2))); // axis step 2→4
        assert!(n.contains(&HybridConfig::new(2, 1, 2)));
        assert!(n.contains(&HybridConfig::new(2, 3, 2)));
        assert!(n.contains(&HybridConfig::new(2, 2, 1)));
        assert!(n.contains(&HybridConfig::new(2, 2, 3)));
        assert_eq!(n.len(), 6);
    }

    #[test]
    fn neighbors_never_produce_empty_config() {
        for cfg in all_configs() {
            for n in neighbors(cfg) {
                assert!(n.v + n.s >= 1, "{cfg} -> {n}");
            }
        }
    }

    #[test]
    fn simulated_cost_prefers_packed_crc() {
        let t = crate::templates::crc64();
        let m = CpuModel::silver_4110();
        let mut eval = SimulatedCost::new(&m, &t);
        let serial = eval.cost(HybridConfig::new(1, 0, 1));
        let packed = eval.cost(HybridConfig::new(4, 0, 2));
        assert!(packed < serial, "packed {packed} vs serial {serial}");
    }

    #[test]
    fn measured_cost_runs_every_family() {
        for f in Family::ALL {
            let mut eval = MeasuredCost::new(f, 4096);
            let c = eval.cost(HybridConfig::new(1, 1, 1));
            assert!(c.is_finite() && c > 0.0, "{}", f.name());
        }
    }

    #[test]
    fn exhaustive_covers_the_whole_grid() {
        let mut eval = Synthetic { opt: HybridConfig::new(1, 1, 1), calls: 0 };
        let out = exhaustive(&mut eval);
        assert_eq!(out.tested.len(), all_configs().count());
        assert_eq!(out.best, HybridConfig::new(1, 1, 1));
    }
}

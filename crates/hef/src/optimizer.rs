//! The optimizer (Algorithm 2 of the paper): test-based neighbour search
//! with winner/loser classification and monotone pruning.
//!
//! Starting from the candidate generator's initial node, the optimizer
//! repeatedly expands the cheapest known node: every untested neighbour
//! (one step along the `v`, `s`, or `p` axis of the compiled grid) is
//! generated and timed. Neighbours faster than the expanded node join the
//! candidate list and will be expanded in turn; slower neighbours go to the
//! end list and **their variants are never generated** — the pruning that
//! §IV.C justifies with the observed monotonicity of the runtime on either
//! side of the optimum. The search ends when the candidate list is empty,
//! and because the neighbour relation keeps the grid strongly connected,
//! the best tested node is the grid optimum for monotone cost surfaces.

use std::collections::HashMap;
use std::fmt;

use hef_kernels::{
    all_configs, BloomFilter, Family, HybridConfig, KernelIo, ProbeTable, F_AXIS, P_AXIS,
    S_AXIS, V_AXIS,
};
use hef_uarch::{AccessPattern, CacheSim, CpuModel};

use crate::error::HefError;
use crate::ir::OperatorTemplate;
use crate::translate::to_loop_body;

/// Something that can price a configuration (lower is better).
pub trait CostEvaluator {
    /// Cost of running the operator at `cfg` (seconds, cycles per element —
    /// any consistent unit).
    fn cost(&mut self, cfg: HybridConfig) -> f64;
}

/// The result of a search.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The best configuration found.
    pub best: HybridConfig,
    /// Its cost.
    pub best_cost: f64,
    /// Every tested node with its cost, in test order.
    pub tested: Vec<(HybridConfig, f64)>,
    /// Nodes classified as losers (the end list).
    pub end_list: Vec<HybridConfig>,
}

impl SearchOutcome {
    /// Grid nodes never generated or tested.
    pub fn pruned(&self) -> usize {
        all_configs().count() - self.tested.len()
    }
}

pub(crate) fn axis_neighbors(x: usize, axis: &[usize]) -> Option<Vec<usize>> {
    let i = axis.iter().position(|&a| a == x)?;
    let mut out = Vec::new();
    if i > 0 {
        out.push(axis[i - 1]);
    }
    if i + 1 < axis.len() {
        out.push(axis[i + 1]);
    }
    Some(out)
}

/// Neighbours of `cfg` on the compiled grid: one axis step in `v`, `s`, or
/// `p`, excluding the empty `(0,0,·)` column. Off-grid nodes have no axis
/// position to step from, so they are a typed error.
pub fn try_neighbors(cfg: HybridConfig) -> Result<Vec<HybridConfig>, HefError> {
    let (Some(vs), Some(ss), Some(ps)) = (
        axis_neighbors(cfg.v, V_AXIS),
        axis_neighbors(cfg.s, S_AXIS),
        axis_neighbors(cfg.p, P_AXIS),
    ) else {
        return Err(HefError::off_grid(cfg));
    };
    let mut out = Vec::new();
    for v in vs {
        if v + cfg.s >= 1 {
            out.push(HybridConfig { v, ..cfg });
        }
    }
    for s in ss {
        if cfg.v + s >= 1 {
            out.push(HybridConfig { s, ..cfg });
        }
    }
    for p in ps {
        out.push(HybridConfig { p, ..cfg });
    }
    Ok(out)
}

/// Panicking convenience over [`try_neighbors`] for known-on-grid nodes.
pub fn neighbors(cfg: HybridConfig) -> Vec<HybridConfig> {
    try_neighbors(cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// Relative band within which two measurements are treated as a near-tie
/// that one sample cannot decide, triggering median-of-3 re-measurement.
const NEAR_TIE_BAND: f64 = 0.08;

/// A measurement this many times worse than its reference is treated as a
/// suspected outlier (interference, an injected spike) and re-measured.
const OUTLIER_FACTOR: f64 = 3.0;

/// NaN is an evaluator bug, not a price; treat it as unaffordable so the
/// search's total order stays meaningful.
fn sanitize(c: f64) -> f64 {
    if c.is_nan() {
        f64::INFINITY
    } else {
        c
    }
}

fn median_of_3(sample: &mut dyn FnMut() -> f64, first: f64) -> f64 {
    hef_obs::metrics::add(hef_obs::metrics::Metric::TunerRemeasurements, 1);
    hef_obs::metrics::add(hef_obs::metrics::Metric::TunerTrials, 2);
    let mut xs = [first, sanitize(sample()), sanitize(sample())];
    xs.sort_by(f64::total_cmp);
    xs[1]
}

/// One robust measurement: a single sample, re-measured (median of 3) when
/// it is decision-critical — a near-tie with the expanded node, a suspected
/// outlier, or a would-be new global best. This is the policy that keeps a
/// single noisy sample from steering the search: winners/losers separated
/// by a clear margin are accepted on one sample, but anything that would
/// flip a classification or the final answer gets confirmed.
///
/// Node-agnostic (the node is baked into `sample`), so the `(v,s,p)` and
/// `(v,s,p,f)` searches share one measurement policy.
pub(crate) fn robust_cost(
    sample: &mut dyn FnMut() -> f64,
    reference: Option<f64>,
    running_best: f64,
) -> f64 {
    hef_obs::metrics::add(hef_obs::metrics::Metric::TunerTrials, 1);
    let c = sanitize(sample());
    if !c.is_finite() {
        return c;
    }
    let suspicious = match reference {
        Some(r) if r.is_finite() => {
            let scale = c.abs().max(r.abs());
            (c - r).abs() <= NEAR_TIE_BAND * scale || c > r * OUTLIER_FACTOR
        }
        // No finite reference (the initial node): it seeds every later
        // comparison, so always confirm it.
        _ => true,
    };
    if suspicious || c < running_best {
        median_of_3(sample, c)
    } else {
        c
    }
}

/// Run Algorithm 2 from `initial`.
pub fn optimize(initial: HybridConfig, eval: &mut dyn CostEvaluator) -> SearchOutcome {
    let initial = crate::candidate::snap(initial);
    let _span = hef_obs::span!(
        "optimize",
        v = initial.v,
        s = initial.s,
        p = initial.p
    );
    hef_obs::metrics::add(hef_obs::metrics::Metric::TunerSearches, 1);
    let mut costs: HashMap<HybridConfig, f64> = HashMap::new();
    let mut order: Vec<(HybridConfig, f64)> = Vec::new();
    let mut end_list: Vec<HybridConfig> = Vec::new();

    let c0 = robust_cost(&mut || eval.cost(initial), None, f64::INFINITY);
    costs.insert(initial, c0);
    order.push((initial, c0));
    let mut best = (initial, c0);

    // Candidate list of nodes to expand, kept sorted by ascending cost so
    // the most promising node is expanded first.
    let mut candidates = vec![initial];
    let mut expanded: Vec<HybridConfig> = Vec::new();

    while let Some(pos) = candidates
        .iter()
        .enumerate()
        .min_by(|a, b| costs[a.1].total_cmp(&costs[b.1]))
        .map(|(i, _)| i)
    {
        let node = candidates.swap_remove(pos);
        if expanded.contains(&node) {
            continue;
        }
        expanded.push(node);
        let node_cost = costs[&node];

        // `node` came from `snap`/`try_neighbors`, so it is on-grid and
        // `try_neighbors` cannot fail here; the empty default keeps the
        // search panic-free regardless.
        for n in try_neighbors(node).unwrap_or_default() {
            if costs.contains_key(&n) {
                continue;
            }
            let c = robust_cost(&mut || eval.cost(n), Some(node_cost), best.1);
            costs.insert(n, c);
            order.push((n, c));
            if c < best.1 {
                best = (n, c);
            }
            if c < node_cost {
                candidates.push(n); // winner: expand its variants later
            } else {
                end_list.push(n); // loser: variants pruned
            }
        }
    }

    let outcome = SearchOutcome { best: best.0, best_cost: best.1, tested: order, end_list };
    hef_obs::metrics::add(
        hef_obs::metrics::Metric::TunerPruned,
        outcome.pruned() as u64,
    );
    outcome
}

/// Exhaustive baseline: test every grid node (the cost the pruning avoids).
pub fn exhaustive(eval: &mut dyn CostEvaluator) -> SearchOutcome {
    let mut order = Vec::new();
    for cfg in all_configs() {
        let c = sanitize(eval.cost(cfg));
        order.push((cfg, c));
    }
    let (best, best_cost) = order
        .iter()
        .copied()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap_or((HybridConfig { v: 1, s: 1, p: 3 }, f64::INFINITY));
    SearchOutcome { best, best_cost, tested: order, end_list: Vec::new() }
}

/// A probe-family search node: the hybrid shape plus the software-prefetch
/// depth `f` (elements kept in flight by the AMAC ring). `f` is a runtime
/// parameter of the compiled kernels, so the search axis
/// ([`hef_kernels::F_AXIS`]) bounds only what the tuner *tries*, not what
/// can execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProbeNode {
    pub cfg: HybridConfig,
    pub f: usize,
}

impl ProbeNode {
    pub fn new(v: usize, s: usize, p: usize, f: usize) -> Self {
        ProbeNode { cfg: HybridConfig::new(v, s, p), f }
    }
}

impl fmt::Display for ProbeNode {
    fn fmt(&self, w: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(w, "n{}{}{}f{}", self.cfg.v, self.cfg.s, self.cfg.p, self.f)
    }
}

/// Something that can price a probe node (lower is better).
pub trait ProbeCostEvaluator {
    fn probe_cost(&mut self, node: ProbeNode) -> f64;
}

/// The result of a probe `(v,s,p,f)` search.
#[derive(Debug, Clone)]
pub struct ProbeSearchOutcome {
    pub best: ProbeNode,
    pub best_cost: f64,
    pub tested: Vec<(ProbeNode, f64)>,
    pub end_list: Vec<ProbeNode>,
}

impl ProbeSearchOutcome {
    /// Grid nodes (config × prefetch-axis points) never generated or tested.
    pub fn pruned(&self) -> usize {
        all_configs().count() * F_AXIS.len() - self.tested.len()
    }
}

/// Neighbours of a probe node: one axis step in `v`, `s`, or `p` at the
/// same depth, plus one step along the `f` axis at the same shape. The
/// pruning along `f` leans on the same monotonicity assumption as the
/// hybrid axes — modeled as the LFB-capped, non-decreasing
/// `CacheSim::effective_mlp`, so cost is convex-ish in `f` (too shallow
/// serializes misses, too deep evicts its own prefetches).
pub fn try_probe_neighbors(node: ProbeNode) -> Result<Vec<ProbeNode>, HefError> {
    let Some(fs) = axis_neighbors(node.f, F_AXIS) else {
        return Err(HefError::OffAxisPrefetch { f: node.f });
    };
    let mut out: Vec<ProbeNode> = try_neighbors(node.cfg)?
        .into_iter()
        .map(|cfg| ProbeNode { cfg, f: node.f })
        .collect();
    for f in fs {
        out.push(ProbeNode { cfg: node.cfg, f });
    }
    Ok(out)
}

/// Panicking convenience over [`try_probe_neighbors`] for known-on-grid nodes.
pub fn probe_neighbors(node: ProbeNode) -> Vec<ProbeNode> {
    try_probe_neighbors(node).unwrap_or_else(|e| panic!("{e}"))
}

/// Algorithm 2 over the probe family's four-dimensional `(v,s,p,f)` grid:
/// identical winner/loser classification and monotone pruning, with the
/// prefetch depth as one more axis.
pub fn optimize_probe(initial: ProbeNode, eval: &mut dyn ProbeCostEvaluator) -> ProbeSearchOutcome {
    let initial = ProbeNode {
        cfg: crate::candidate::snap(initial.cfg),
        f: crate::candidate::snap_to_axis(initial.f, F_AXIS),
    };
    let _span = hef_obs::span!(
        "optimize_probe",
        v = initial.cfg.v,
        s = initial.cfg.s,
        p = initial.cfg.p,
        f = initial.f
    );
    hef_obs::metrics::add(hef_obs::metrics::Metric::TunerSearches, 1);
    let mut costs: HashMap<ProbeNode, f64> = HashMap::new();
    let mut order: Vec<(ProbeNode, f64)> = Vec::new();
    let mut end_list: Vec<ProbeNode> = Vec::new();

    let c0 = robust_cost(&mut || eval.probe_cost(initial), None, f64::INFINITY);
    costs.insert(initial, c0);
    order.push((initial, c0));
    let mut best = (initial, c0);

    let mut candidates = vec![initial];
    let mut expanded: Vec<ProbeNode> = Vec::new();

    while let Some(pos) = candidates
        .iter()
        .enumerate()
        .min_by(|a, b| costs[a.1].total_cmp(&costs[b.1]))
        .map(|(i, _)| i)
    {
        let node = candidates.swap_remove(pos);
        if expanded.contains(&node) {
            continue;
        }
        expanded.push(node);
        let node_cost = costs[&node];

        for n in try_probe_neighbors(node).unwrap_or_default() {
            if costs.contains_key(&n) {
                continue;
            }
            let c = robust_cost(&mut || eval.probe_cost(n), Some(node_cost), best.1);
            costs.insert(n, c);
            order.push((n, c));
            if c < best.1 {
                best = (n, c);
            }
            if c < node_cost {
                candidates.push(n);
            } else {
                end_list.push(n);
            }
        }
    }

    let outcome =
        ProbeSearchOutcome { best: best.0, best_cost: best.1, tested: order, end_list };
    hef_obs::metrics::add(
        hef_obs::metrics::Metric::TunerPruned,
        outcome.pruned() as u64,
    );
    outcome
}

/// Applies the armed fault plan's cost spikes (`HEF_FAULT=spike:…` or a
/// programmatic [`hef_testutil::fault::FaultPlan`]) to an inner evaluator,
/// counting measurements in global call order. The `tune_*` facades wrap
/// their evaluators in this, so injected outliers exercise the search's
/// re-measurement defence end-to-end; with no plan armed it is a single
/// atomic load per call.
pub struct SpikedCost<E> {
    pub inner: E,
}

impl<E: CostEvaluator> CostEvaluator for SpikedCost<E> {
    fn cost(&mut self, cfg: HybridConfig) -> f64 {
        let c = self.inner.cost(cfg);
        match hef_testutil::fault::next_cost_spike() {
            Some(factor) => c * factor,
            None => c,
        }
    }
}

impl<E: ProbeCostEvaluator> ProbeCostEvaluator for SpikedCost<E> {
    fn probe_cost(&mut self, node: ProbeNode) -> f64 {
        let c = self.inner.probe_cost(node);
        match hef_testutil::fault::next_cost_spike() {
            Some(factor) => c * factor,
            None => c,
        }
    }
}

/// Prices a node by simulating its translated µop trace on a CPU model —
/// the offline tuning path for processors we do not have.
pub struct SimulatedCost<'a> {
    pub model: &'a CpuModel,
    pub template: &'a OperatorTemplate,
    /// Steady-state iterations to simulate.
    pub iterations: usize,
}

impl<'a> SimulatedCost<'a> {
    pub fn new(model: &'a CpuModel, template: &'a OperatorTemplate) -> Self {
        SimulatedCost { model, template, iterations: 60 }
    }
}

impl CostEvaluator for SimulatedCost<'_> {
    fn cost(&mut self, cfg: HybridConfig) -> f64 {
        let body = to_loop_body(self.template, cfg);
        let r = hef_uarch::simulate(self.model, &body, self.iterations);
        hef_obs::metrics::add(hef_obs::metrics::Metric::SimRuns, 1);
        hef_obs::metrics::add(hef_obs::metrics::Metric::SimCycles, r.cycles);
        let elems = (cfg.step() * self.iterations) as f64;
        // Nanoseconds per element: cycles / frequency, normalized per element
        // so different step widths are comparable.
        let ghz = hef_uarch::freq::frequency_ghz(self.model, &body);
        r.cycles as f64 / ghz / elems
    }
}

/// The bit width [`MeasuredCost`] packs its synthetic Decode stream with:
/// a mid-grid width whose 8192-entry dictionary (64 KiB) sits in L2,
/// representative of the SSB dimension-key columns.
pub const MEASURED_DECODE_WIDTH: u32 = 13;

/// Prices a node by actually running the compiled kernel on this machine
/// (the paper's primary, test-based path).
pub struct MeasuredCost {
    family: Family,
    input: Vec<u64>,
    input2: Vec<u64>,
    output: Vec<u64>,
    table: Option<ProbeTable>,
    bloom: Option<BloomFilter>,
    /// Packed `MEASURED_DECODE_WIDTH`-bit codes + dictionary (Decode only).
    decode: Option<(Vec<u64>, Vec<u64>)>,
    /// Timing trials per node; the minimum is used.
    pub trials: usize,
    /// Hardware cycles of the fastest trial of the most recent [`cost`]
    /// call (`hef_testutil::read_cycles`; `None` off x86_64 or before any
    /// measurement). Lets callers report cycles alongside wall time.
    ///
    /// [`cost`]: CostEvaluator::cost
    pub last_cycles: Option<u64>,
}

impl MeasuredCost {
    /// Build an evaluator with `n` elements of synthetic input.
    pub fn new(family: Family, n: usize) -> Self {
        let input: Vec<u64> = (0..n as u64)
            .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1))
            .collect();
        let input2: Vec<u64> = (0..n as u64).map(|i| (i % 97) + 1).collect();
        let table = match family {
            Family::Probe => {
                let mut t = ProbeTable::with_capacity(n / 16 + 1);
                for k in 0..(n as u64 / 16) {
                    t.insert(k * 2 + 1, k + 1);
                }
                Some(t)
            }
            _ => None,
        };
        let bloom = match family {
            Family::BloomCheck => {
                let mut f = BloomFilter::with_capacity(n / 16 + 1);
                for k in 0..(n as u64 / 16) {
                    f.insert(k * 2 + 1);
                }
                Some(f)
            }
            _ => None,
        };
        let decode = match family {
            Family::Decode => {
                let mask = hef_kernels::decode::code_mask(MEASURED_DECODE_WIDTH);
                let codes: Vec<u64> = input.iter().map(|&x| x & mask).collect();
                let words = hef_kernels::decode::pack(&codes, MEASURED_DECODE_WIDTH);
                let dict: Vec<u64> = (0..1u64 << MEASURED_DECODE_WIDTH)
                    .map(|i| i.wrapping_mul(0x2545_f491_4f6c_dd1d))
                    .collect();
                Some((words, dict))
            }
            _ => None,
        };
        MeasuredCost {
            family,
            output: vec![0u64; n],
            input,
            input2,
            table,
            bloom,
            decode,
            trials: 3,
            last_cycles: None,
        }
    }

    fn run_once(&mut self, cfg: HybridConfig) -> bool {
        let mut sel = Vec::new();
        let mut acc = 0u64;
        let mut io = match self.family {
            Family::Murmur | Family::Crc64 => KernelIo::Map {
                input: &self.input,
                output: &mut self.output,
            },
            Family::Probe => KernelIo::Probe {
                keys: &self.input2, // small-domain keys: mixture of hits
                table: self.table.as_ref().expect("probe table built"),
                out: &mut self.output,
                prefetch: 0,
            },
            Family::Filter => KernelIo::Filter {
                input: &self.input2,
                lo: 10,
                hi: 60,
                base: 0,
                sel: &mut sel,
            },
            Family::AggSum => KernelIo::AggSum { a: &self.input, acc: &mut acc },
            Family::AggDot => KernelIo::AggDot {
                a: &self.input,
                b: &self.input2,
                acc: &mut acc,
            },
            Family::BloomCheck => KernelIo::Bloom {
                keys: &self.input2,
                filter: self.bloom.as_ref().expect("bloom filter built"),
                out: &mut self.output,
                prefetch: 0,
            },
            Family::Gather => KernelIo::Gather {
                src: &self.input,
                idx: &self.input2, // values < 97 < n: always in bounds
                out: &mut self.output,
                prefetch: 0,
            },
            Family::Decode => {
                let (words, dict) = self.decode.as_ref().expect("decode inputs built");
                KernelIo::Decode {
                    words,
                    width: MEASURED_DECODE_WIDTH,
                    reference: 0,
                    dict: Some(dict),
                    start: 0,
                    out: &mut self.output,
                }
            }
        };
        hef_kernels::run(self.family, cfg, &mut io)
    }
}

impl CostEvaluator for MeasuredCost {
    fn cost(&mut self, cfg: HybridConfig) -> f64 {
        // Probe once: off-grid nodes are infinitely expensive.
        if !self.run_once(cfg) {
            return f64::INFINITY;
        }
        // Shared clock discipline with the bench harness: warm-up run,
        // then best-of-`trials` wall time (cycles of the same best run).
        let (secs, cycles) = hef_testutil::time_best_of_cycles(self.trials, || {
            self.run_once(cfg);
        });
        self.last_cycles = cycles;
        if let Some(c) = cycles {
            hef_obs::metrics::observe(
                hef_obs::metrics::Hist::KernelCyclesPerRow,
                c / self.input.len().max(1) as u64,
            );
        }
        secs
    }
}

/// Prices a probe node by running the compiled kernel against a build side
/// of a *chosen* size — unlike [`MeasuredCost`]'s fixed small-domain table,
/// this is how the `f` axis gets tuned where it matters: with the hash
/// table resident in L2, LLC, or DRAM.
pub struct MeasuredProbeCost {
    keys: Vec<u64>,
    output: Vec<u64>,
    table: ProbeTable,
    /// Timing trials per node; the minimum is used.
    pub trials: usize,
    /// Hardware cycles of the fastest trial of the most recent cost call.
    pub last_cycles: Option<u64>,
}

impl MeasuredProbeCost {
    /// An evaluator probing `nkeys` uniform keys into a table of
    /// `build_entries` entries (≈50 % hit rate: keys are drawn from twice
    /// the inserted key domain).
    pub fn new(build_entries: usize, nkeys: usize) -> Self {
        let mut table = ProbeTable::with_capacity(build_entries.max(1));
        for k in 0..build_entries as u64 {
            table.insert(k * 2 + 1, k + 1);
        }
        // Golden-ratio scramble: uniform, aperiodic, deterministic.
        let domain = (2 * build_entries.max(1)) as u64;
        let keys: Vec<u64> = (0..nkeys as u64)
            .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15) % domain)
            .collect();
        MeasuredProbeCost {
            output: vec![0u64; nkeys],
            keys,
            table,
            trials: 3,
            last_cycles: None,
        }
    }

    /// Bytes of the build side actually touched by probes.
    pub fn working_set_bytes(&self) -> usize {
        self.table.working_set_bytes()
    }

    fn run_once(&mut self, node: ProbeNode) -> bool {
        let mut io = KernelIo::Probe {
            keys: &self.keys,
            table: &self.table,
            out: &mut self.output,
            prefetch: node.f,
        };
        hef_kernels::run(Family::Probe, node.cfg, &mut io)
    }
}

impl ProbeCostEvaluator for MeasuredProbeCost {
    fn probe_cost(&mut self, node: ProbeNode) -> f64 {
        if !self.run_once(node) {
            return f64::INFINITY;
        }
        let (secs, cycles) = hef_testutil::time_best_of_cycles(self.trials, || {
            self.run_once(node);
        });
        self.last_cycles = cycles;
        if let Some(c) = cycles {
            hef_obs::metrics::observe(
                hef_obs::metrics::Hist::KernelCyclesPerRow,
                c / self.keys.len().max(1) as u64,
            );
        }
        secs
    }
}

/// Prices a probe node on a modeled CPU: the µop simulator gives the
/// compute cycles of the hybrid shape, and the cache model's prefetch-aware
/// stall cost ([`CacheSim::prefetch_stall_cycles`]) adds the memory side,
/// so simulated Mcycles stay comparable with measured ones across the `f`
/// axis.
pub struct SimulatedProbeCost<'a> {
    pub model: &'a CpuModel,
    pub template: &'a OperatorTemplate,
    /// Bytes of the build side the probes hit (drives the miss model).
    pub working_set: u64,
    /// Steady-state iterations to simulate.
    pub iterations: usize,
}

impl<'a> SimulatedProbeCost<'a> {
    pub fn new(model: &'a CpuModel, template: &'a OperatorTemplate, working_set: u64) -> Self {
        SimulatedProbeCost { model, template, working_set, iterations: 60 }
    }
}

impl ProbeCostEvaluator for SimulatedProbeCost<'_> {
    fn probe_cost(&mut self, node: ProbeNode) -> f64 {
        let body = to_loop_body(self.template, node.cfg);
        let r = hef_uarch::simulate(self.model, &body, self.iterations);
        hef_obs::metrics::add(hef_obs::metrics::Metric::SimRuns, 1);
        hef_obs::metrics::add(hef_obs::metrics::Metric::SimCycles, r.cycles);
        let elems = (node.cfg.step() * self.iterations) as u64;
        let cache = CacheSim::new(self.model);
        let misses = cache.misses(AccessPattern::RandomProbe {
            count: elems,
            working_set: self.working_set,
        });
        let stall = cache.prefetch_stall_cycles(&misses, node.f);
        let ghz = hef_uarch::freq::frequency_ghz(self.model, &body);
        (r.cycles as f64 + stall as f64) / ghz / elems as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A convex synthetic cost surface with a known optimum.
    struct Synthetic {
        opt: HybridConfig,
        calls: usize,
    }

    impl CostEvaluator for Synthetic {
        fn cost(&mut self, cfg: HybridConfig) -> f64 {
            self.calls += 1;
            let vd = (V_AXIS.iter().position(|&x| x == cfg.v).unwrap() as f64
                - V_AXIS.iter().position(|&x| x == self.opt.v).unwrap() as f64)
                .abs();
            let sd = (cfg.s as f64 - self.opt.s as f64).abs();
            let pd = (cfg.p as f64 - self.opt.p as f64).abs();
            1.0 + vd + sd + pd
        }
    }

    #[test]
    fn finds_the_optimum_of_a_convex_surface() {
        for opt in [
            HybridConfig::new(1, 3, 2),
            HybridConfig::new(8, 0, 1),
            HybridConfig::new(1, 1, 3),
        ] {
            let mut eval = Synthetic { opt, calls: 0 };
            let out = optimize(HybridConfig::new(1, 1, 1), &mut eval);
            assert_eq!(out.best, opt, "from (1,1,1)");
            assert!(
                out.tested.len() < all_configs().count(),
                "search must prune"
            );
        }
    }

    #[test]
    fn pruning_tests_far_fewer_nodes_than_exhaustive() {
        let mut eval = Synthetic { opt: HybridConfig::new(1, 3, 2), calls: 0 };
        let pruned = optimize(HybridConfig::new(2, 2, 2), &mut eval);
        let tested = pruned.tested.len();
        let total = all_configs().count();
        assert!(
            tested * 2 < total,
            "tested {tested} of {total} — pruning ineffective"
        );
        assert_eq!(pruned.pruned(), total - tested);
    }

    #[test]
    fn neighbors_step_one_axis_position() {
        let n = neighbors(HybridConfig::new(2, 2, 2));
        assert!(n.contains(&HybridConfig::new(1, 2, 2)));
        assert!(n.contains(&HybridConfig::new(4, 2, 2))); // axis step 2→4
        assert!(n.contains(&HybridConfig::new(2, 1, 2)));
        assert!(n.contains(&HybridConfig::new(2, 3, 2)));
        assert!(n.contains(&HybridConfig::new(2, 2, 1)));
        assert!(n.contains(&HybridConfig::new(2, 2, 3)));
        assert_eq!(n.len(), 6);
    }

    #[test]
    fn neighbors_never_produce_empty_config() {
        for cfg in all_configs() {
            for n in neighbors(cfg) {
                assert!(n.v + n.s >= 1, "{cfg} -> {n}");
            }
        }
    }

    #[test]
    fn simulated_cost_prefers_packed_crc() {
        let t = crate::templates::crc64();
        let m = CpuModel::silver_4110();
        let mut eval = SimulatedCost::new(&m, &t);
        let serial = eval.cost(HybridConfig::new(1, 0, 1));
        let packed = eval.cost(HybridConfig::new(4, 0, 2));
        assert!(packed < serial, "packed {packed} vs serial {serial}");
    }

    #[test]
    fn measured_cost_runs_every_family() {
        for f in Family::ALL {
            let mut eval = MeasuredCost::new(f, 4096);
            let c = eval.cost(HybridConfig::new(1, 1, 1));
            assert!(c.is_finite() && c > 0.0, "{}", f.name());
        }
    }

    #[test]
    fn off_grid_neighbors_are_a_typed_error() {
        let e = try_neighbors(HybridConfig { v: 3, s: 1, p: 2 }).unwrap_err();
        assert!(matches!(e, HefError::OffGrid { v: 3, s: 1, p: 2 }), "{e}");
        let e = try_neighbors(HybridConfig { v: 1, s: 1, p: 9 }).unwrap_err();
        assert!(matches!(e, HefError::OffGrid { .. }));
    }

    /// An evaluator that returns NaN for one node.
    struct Poisoned {
        inner: Synthetic,
        bad: HybridConfig,
    }

    impl CostEvaluator for Poisoned {
        fn cost(&mut self, cfg: HybridConfig) -> f64 {
            if cfg == self.bad {
                f64::NAN
            } else {
                self.inner.cost(cfg)
            }
        }
    }

    #[test]
    fn nan_cost_never_wins_or_panics() {
        let opt = HybridConfig::new(1, 3, 2);
        let mut eval = Poisoned {
            inner: Synthetic { opt, calls: 0 },
            bad: HybridConfig::new(1, 2, 2),
        };
        let out = optimize(HybridConfig::new(1, 1, 1), &mut eval);
        assert!(out.best_cost.is_finite());
        assert_ne!(out.best, eval.bad);
        assert_eq!(out.best, opt);
    }

    #[test]
    fn downward_spike_cannot_hijack_best() {
        use hef_testutil::fault::{CostSpike, FaultPlan};
        let opt = HybridConfig::new(1, 3, 2);
        // Spike one mid-search measurement down 100×: the would-be-new-best
        // re-measurement (median of 3) must discard it.
        let plan = FaultPlan {
            cost_spikes: vec![CostSpike { trial: 7, factor: 0.01 }],
            ..Default::default()
        };
        hef_testutil::fault::with_plan(plan, || {
            let mut eval = SpikedCost { inner: Synthetic { opt, calls: 0 } };
            let out = optimize(HybridConfig::new(2, 2, 2), &mut eval);
            assert_eq!(out.best, opt, "spiked measurement became best");
        });
    }

    #[test]
    fn spiked_cost_is_transparent_without_spikes() {
        // An empty plan (taken to serialize against other fault tests):
        // the wrapper must not perturb any measurement.
        hef_testutil::fault::with_plan(Default::default(), || {
            let mut plain = Synthetic { opt: HybridConfig::new(1, 3, 2), calls: 0 };
            let mut wrapped =
                SpikedCost { inner: Synthetic { opt: HybridConfig::new(1, 3, 2), calls: 0 } };
            for cfg in all_configs().take(10) {
                assert_eq!(plain.cost(cfg), wrapped.cost(cfg));
            }
        });
    }

    /// A convex synthetic probe-cost surface over (v, s, p, f).
    struct SyntheticProbe {
        opt: ProbeNode,
        calls: usize,
    }

    impl ProbeCostEvaluator for SyntheticProbe {
        fn probe_cost(&mut self, node: ProbeNode) -> f64 {
            self.calls += 1;
            let pos = |x: usize, axis: &[usize]| {
                axis.iter().position(|&a| a == x).unwrap() as f64
            };
            1.0 + (pos(node.cfg.v, V_AXIS) - pos(self.opt.cfg.v, V_AXIS)).abs()
                + (node.cfg.s as f64 - self.opt.cfg.s as f64).abs()
                + (node.cfg.p as f64 - self.opt.cfg.p as f64).abs()
                + (pos(node.f, F_AXIS) - pos(self.opt.f, F_AXIS)).abs()
        }
    }

    #[test]
    fn probe_search_finds_the_optimum_including_depth() {
        for opt in [
            ProbeNode::new(2, 2, 3, 16),
            ProbeNode::new(1, 1, 3, 0),
            ProbeNode::new(8, 0, 1, 64),
        ] {
            let mut eval = SyntheticProbe { opt, calls: 0 };
            let out = optimize_probe(ProbeNode::new(1, 1, 1, 0), &mut eval);
            assert_eq!(out.best, opt, "from (1,1,1,f=0)");
            let total = all_configs().count() * F_AXIS.len();
            assert!(out.tested.len() < total, "4-D search must prune");
            assert_eq!(out.pruned(), total - out.tested.len());
        }
    }

    #[test]
    fn probe_neighbors_step_every_axis_including_f() {
        let n = probe_neighbors(ProbeNode::new(2, 2, 2, 8));
        // Hybrid-axis steps keep f; f-axis steps keep the shape.
        assert!(n.contains(&ProbeNode::new(1, 2, 2, 8)));
        assert!(n.contains(&ProbeNode::new(4, 2, 2, 8)));
        assert!(n.contains(&ProbeNode::new(2, 2, 2, 4)));
        assert!(n.contains(&ProbeNode::new(2, 2, 2, 16)));
        assert_eq!(n.len(), 8, "{n:?}");
        // f = 0 has only an upward step.
        let n0 = probe_neighbors(ProbeNode::new(2, 2, 2, 0));
        assert!(n0.contains(&ProbeNode::new(2, 2, 2, 4)));
        assert!(!n0.iter().any(|x| x.f != 0 && x.f != 4));
    }

    #[test]
    fn off_axis_prefetch_is_a_typed_error() {
        let e = try_probe_neighbors(ProbeNode::new(1, 1, 3, 7)).unwrap_err();
        assert!(matches!(e, HefError::OffAxisPrefetch { f: 7 }), "{e}");
        assert!(e.to_string().contains("off the search axis"), "{e}");
    }

    #[test]
    fn probe_node_snap_lands_on_the_grid() {
        // Off-grid initial nodes are snapped, not rejected.
        let mut eval = SyntheticProbe { opt: ProbeNode::new(2, 2, 3, 16), calls: 0 };
        let out = optimize_probe(ProbeNode::new(3, 2, 3, 13), &mut eval);
        assert_eq!(out.best, ProbeNode::new(2, 2, 3, 16));
    }

    #[test]
    fn measured_probe_cost_prices_any_depth() {
        let mut eval = MeasuredProbeCost::new(1 << 10, 4096);
        for f in [0usize, 16] {
            let c = eval.probe_cost(ProbeNode::new(1, 1, 3, f));
            assert!(c.is_finite() && c > 0.0, "f={f}");
            assert!(eval.last_cycles.is_some() || !cfg!(target_arch = "x86_64"));
        }
        assert!(eval.working_set_bytes() > 0);
        // Off-grid shapes are unaffordable, not a panic.
        assert_eq!(eval.probe_cost(ProbeNode::new(3, 1, 1, 0)), f64::INFINITY);
    }

    #[test]
    fn simulated_probe_cost_rewards_prefetch_only_out_of_cache() {
        let t = crate::templates::probe();
        let m = CpuModel::silver_4110();
        // DRAM-resident build side: prefetch depth pays.
        let mut dram = SimulatedProbeCost::new(&m, &t, 64 << 20);
        let flat = dram.probe_cost(ProbeNode::new(2, 2, 3, 0));
        let deep = dram.probe_cost(ProbeNode::new(2, 2, 3, 16));
        assert!(deep < flat * 0.6, "deep {deep} vs flat {flat}");
        // L1-resident: no misses to hide, f is a wash.
        let mut hot = SimulatedProbeCost::new(&m, &t, 16 << 10);
        let hot_flat = hot.probe_cost(ProbeNode::new(2, 2, 3, 0));
        let hot_deep = hot.probe_cost(ProbeNode::new(2, 2, 3, 16));
        assert_eq!(hot_flat, hot_deep);
    }

    #[test]
    fn exhaustive_covers_the_whole_grid() {
        let mut eval = Synthetic { opt: HybridConfig::new(1, 1, 1), calls: 0 };
        let out = exhaustive(&mut eval);
        assert_eq!(out.tested.len(), all_configs().count());
        assert_eq!(out.best, HybridConfig::new(1, 1, 1));
    }
}

//! The optimizer (Algorithm 2 of the paper): test-based neighbour search
//! with winner/loser classification and monotone pruning.
//!
//! Starting from the candidate generator's initial node, the optimizer
//! repeatedly expands the cheapest known node: every untested neighbour
//! (one step along the `v`, `s`, or `p` axis of the compiled grid) is
//! generated and timed. Neighbours faster than the expanded node join the
//! candidate list and will be expanded in turn; slower neighbours go to the
//! end list and **their variants are never generated** — the pruning that
//! §IV.C justifies with the observed monotonicity of the runtime on either
//! side of the optimum. The search ends when the candidate list is empty,
//! and because the neighbour relation keeps the grid strongly connected,
//! the best tested node is the grid optimum for monotone cost surfaces.

use std::collections::HashMap;

use hef_kernels::{
    all_configs, BloomFilter, Family, HybridConfig, KernelIo, ProbeTable, P_AXIS, S_AXIS,
    V_AXIS,
};
use hef_uarch::CpuModel;

use crate::error::HefError;
use crate::ir::OperatorTemplate;
use crate::translate::to_loop_body;

/// Something that can price a configuration (lower is better).
pub trait CostEvaluator {
    /// Cost of running the operator at `cfg` (seconds, cycles per element —
    /// any consistent unit).
    fn cost(&mut self, cfg: HybridConfig) -> f64;
}

/// The result of a search.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The best configuration found.
    pub best: HybridConfig,
    /// Its cost.
    pub best_cost: f64,
    /// Every tested node with its cost, in test order.
    pub tested: Vec<(HybridConfig, f64)>,
    /// Nodes classified as losers (the end list).
    pub end_list: Vec<HybridConfig>,
}

impl SearchOutcome {
    /// Grid nodes never generated or tested.
    pub fn pruned(&self) -> usize {
        all_configs().count() - self.tested.len()
    }
}

fn axis_neighbors(x: usize, axis: &[usize]) -> Option<Vec<usize>> {
    let i = axis.iter().position(|&a| a == x)?;
    let mut out = Vec::new();
    if i > 0 {
        out.push(axis[i - 1]);
    }
    if i + 1 < axis.len() {
        out.push(axis[i + 1]);
    }
    Some(out)
}

/// Neighbours of `cfg` on the compiled grid: one axis step in `v`, `s`, or
/// `p`, excluding the empty `(0,0,·)` column. Off-grid nodes have no axis
/// position to step from, so they are a typed error.
pub fn try_neighbors(cfg: HybridConfig) -> Result<Vec<HybridConfig>, HefError> {
    let (Some(vs), Some(ss), Some(ps)) = (
        axis_neighbors(cfg.v, V_AXIS),
        axis_neighbors(cfg.s, S_AXIS),
        axis_neighbors(cfg.p, P_AXIS),
    ) else {
        return Err(HefError::off_grid(cfg));
    };
    let mut out = Vec::new();
    for v in vs {
        if v + cfg.s >= 1 {
            out.push(HybridConfig { v, ..cfg });
        }
    }
    for s in ss {
        if cfg.v + s >= 1 {
            out.push(HybridConfig { s, ..cfg });
        }
    }
    for p in ps {
        out.push(HybridConfig { p, ..cfg });
    }
    Ok(out)
}

/// Panicking convenience over [`try_neighbors`] for known-on-grid nodes.
pub fn neighbors(cfg: HybridConfig) -> Vec<HybridConfig> {
    try_neighbors(cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// Relative band within which two measurements are treated as a near-tie
/// that one sample cannot decide, triggering median-of-3 re-measurement.
const NEAR_TIE_BAND: f64 = 0.08;

/// A measurement this many times worse than its reference is treated as a
/// suspected outlier (interference, an injected spike) and re-measured.
const OUTLIER_FACTOR: f64 = 3.0;

/// NaN is an evaluator bug, not a price; treat it as unaffordable so the
/// search's total order stays meaningful.
fn sanitize(c: f64) -> f64 {
    if c.is_nan() {
        f64::INFINITY
    } else {
        c
    }
}

fn median_of_3(eval: &mut dyn CostEvaluator, cfg: HybridConfig, first: f64) -> f64 {
    hef_obs::metrics::add(hef_obs::metrics::Metric::TunerRemeasurements, 1);
    hef_obs::metrics::add(hef_obs::metrics::Metric::TunerTrials, 2);
    let mut xs = [first, sanitize(eval.cost(cfg)), sanitize(eval.cost(cfg))];
    xs.sort_by(f64::total_cmp);
    xs[1]
}

/// One robust measurement: a single sample, re-measured (median of 3) when
/// it is decision-critical — a near-tie with the expanded node, a suspected
/// outlier, or a would-be new global best. This is the policy that keeps a
/// single noisy sample from steering the search: winners/losers separated
/// by a clear margin are accepted on one sample, but anything that would
/// flip a classification or the final answer gets confirmed.
fn robust_cost(
    eval: &mut dyn CostEvaluator,
    cfg: HybridConfig,
    reference: Option<f64>,
    running_best: f64,
) -> f64 {
    hef_obs::metrics::add(hef_obs::metrics::Metric::TunerTrials, 1);
    let c = sanitize(eval.cost(cfg));
    if !c.is_finite() {
        return c;
    }
    let suspicious = match reference {
        Some(r) if r.is_finite() => {
            let scale = c.abs().max(r.abs());
            (c - r).abs() <= NEAR_TIE_BAND * scale || c > r * OUTLIER_FACTOR
        }
        // No finite reference (the initial node): it seeds every later
        // comparison, so always confirm it.
        _ => true,
    };
    if suspicious || c < running_best {
        median_of_3(eval, cfg, c)
    } else {
        c
    }
}

/// Run Algorithm 2 from `initial`.
pub fn optimize(initial: HybridConfig, eval: &mut dyn CostEvaluator) -> SearchOutcome {
    let initial = crate::candidate::snap(initial);
    let _span = hef_obs::span!(
        "optimize",
        v = initial.v,
        s = initial.s,
        p = initial.p
    );
    hef_obs::metrics::add(hef_obs::metrics::Metric::TunerSearches, 1);
    let mut costs: HashMap<HybridConfig, f64> = HashMap::new();
    let mut order: Vec<(HybridConfig, f64)> = Vec::new();
    let mut end_list: Vec<HybridConfig> = Vec::new();

    let c0 = robust_cost(eval, initial, None, f64::INFINITY);
    costs.insert(initial, c0);
    order.push((initial, c0));
    let mut best = (initial, c0);

    // Candidate list of nodes to expand, kept sorted by ascending cost so
    // the most promising node is expanded first.
    let mut candidates = vec![initial];
    let mut expanded: Vec<HybridConfig> = Vec::new();

    while let Some(pos) = candidates
        .iter()
        .enumerate()
        .min_by(|a, b| costs[a.1].total_cmp(&costs[b.1]))
        .map(|(i, _)| i)
    {
        let node = candidates.swap_remove(pos);
        if expanded.contains(&node) {
            continue;
        }
        expanded.push(node);
        let node_cost = costs[&node];

        // `node` came from `snap`/`try_neighbors`, so it is on-grid and
        // `try_neighbors` cannot fail here; the empty default keeps the
        // search panic-free regardless.
        for n in try_neighbors(node).unwrap_or_default() {
            if costs.contains_key(&n) {
                continue;
            }
            let c = robust_cost(eval, n, Some(node_cost), best.1);
            costs.insert(n, c);
            order.push((n, c));
            if c < best.1 {
                best = (n, c);
            }
            if c < node_cost {
                candidates.push(n); // winner: expand its variants later
            } else {
                end_list.push(n); // loser: variants pruned
            }
        }
    }

    let outcome = SearchOutcome { best: best.0, best_cost: best.1, tested: order, end_list };
    hef_obs::metrics::add(
        hef_obs::metrics::Metric::TunerPruned,
        outcome.pruned() as u64,
    );
    outcome
}

/// Exhaustive baseline: test every grid node (the cost the pruning avoids).
pub fn exhaustive(eval: &mut dyn CostEvaluator) -> SearchOutcome {
    let mut order = Vec::new();
    for cfg in all_configs() {
        let c = sanitize(eval.cost(cfg));
        order.push((cfg, c));
    }
    let (best, best_cost) = order
        .iter()
        .copied()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap_or((HybridConfig { v: 1, s: 1, p: 3 }, f64::INFINITY));
    SearchOutcome { best, best_cost, tested: order, end_list: Vec::new() }
}

/// Applies the armed fault plan's cost spikes (`HEF_FAULT=spike:…` or a
/// programmatic [`hef_testutil::fault::FaultPlan`]) to an inner evaluator,
/// counting measurements in global call order. The `tune_*` facades wrap
/// their evaluators in this, so injected outliers exercise the search's
/// re-measurement defence end-to-end; with no plan armed it is a single
/// atomic load per call.
pub struct SpikedCost<E> {
    pub inner: E,
}

impl<E: CostEvaluator> CostEvaluator for SpikedCost<E> {
    fn cost(&mut self, cfg: HybridConfig) -> f64 {
        let c = self.inner.cost(cfg);
        match hef_testutil::fault::next_cost_spike() {
            Some(factor) => c * factor,
            None => c,
        }
    }
}

/// Prices a node by simulating its translated µop trace on a CPU model —
/// the offline tuning path for processors we do not have.
pub struct SimulatedCost<'a> {
    pub model: &'a CpuModel,
    pub template: &'a OperatorTemplate,
    /// Steady-state iterations to simulate.
    pub iterations: usize,
}

impl<'a> SimulatedCost<'a> {
    pub fn new(model: &'a CpuModel, template: &'a OperatorTemplate) -> Self {
        SimulatedCost { model, template, iterations: 60 }
    }
}

impl CostEvaluator for SimulatedCost<'_> {
    fn cost(&mut self, cfg: HybridConfig) -> f64 {
        let body = to_loop_body(self.template, cfg);
        let r = hef_uarch::simulate(self.model, &body, self.iterations);
        hef_obs::metrics::add(hef_obs::metrics::Metric::SimRuns, 1);
        hef_obs::metrics::add(hef_obs::metrics::Metric::SimCycles, r.cycles);
        let elems = (cfg.step() * self.iterations) as f64;
        // Nanoseconds per element: cycles / frequency, normalized per element
        // so different step widths are comparable.
        let ghz = hef_uarch::freq::frequency_ghz(self.model, &body);
        r.cycles as f64 / ghz / elems
    }
}

/// Prices a node by actually running the compiled kernel on this machine
/// (the paper's primary, test-based path).
pub struct MeasuredCost {
    family: Family,
    input: Vec<u64>,
    input2: Vec<u64>,
    output: Vec<u64>,
    table: Option<ProbeTable>,
    bloom: Option<BloomFilter>,
    /// Timing trials per node; the minimum is used.
    pub trials: usize,
    /// Hardware cycles of the fastest trial of the most recent [`cost`]
    /// call (`hef_testutil::read_cycles`; `None` off x86_64 or before any
    /// measurement). Lets callers report cycles alongside wall time.
    ///
    /// [`cost`]: CostEvaluator::cost
    pub last_cycles: Option<u64>,
}

impl MeasuredCost {
    /// Build an evaluator with `n` elements of synthetic input.
    pub fn new(family: Family, n: usize) -> Self {
        let input: Vec<u64> = (0..n as u64)
            .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1))
            .collect();
        let input2: Vec<u64> = (0..n as u64).map(|i| (i % 97) + 1).collect();
        let table = match family {
            Family::Probe => {
                let mut t = ProbeTable::with_capacity(n / 16 + 1);
                for k in 0..(n as u64 / 16) {
                    t.insert(k * 2 + 1, k + 1);
                }
                Some(t)
            }
            _ => None,
        };
        let bloom = match family {
            Family::BloomCheck => {
                let mut f = BloomFilter::with_capacity(n / 16 + 1);
                for k in 0..(n as u64 / 16) {
                    f.insert(k * 2 + 1);
                }
                Some(f)
            }
            _ => None,
        };
        MeasuredCost {
            family,
            output: vec![0u64; n],
            input,
            input2,
            table,
            bloom,
            trials: 3,
            last_cycles: None,
        }
    }

    fn run_once(&mut self, cfg: HybridConfig) -> bool {
        let mut sel = Vec::new();
        let mut acc = 0u64;
        let mut io = match self.family {
            Family::Murmur | Family::Crc64 => KernelIo::Map {
                input: &self.input,
                output: &mut self.output,
            },
            Family::Probe => KernelIo::Probe {
                keys: &self.input2, // small-domain keys: mixture of hits
                table: self.table.as_ref().expect("probe table built"),
                out: &mut self.output,
            },
            Family::Filter => KernelIo::Filter {
                input: &self.input2,
                lo: 10,
                hi: 60,
                base: 0,
                sel: &mut sel,
            },
            Family::AggSum => KernelIo::AggSum { a: &self.input, acc: &mut acc },
            Family::AggDot => KernelIo::AggDot {
                a: &self.input,
                b: &self.input2,
                acc: &mut acc,
            },
            Family::BloomCheck => KernelIo::Bloom {
                keys: &self.input2,
                filter: self.bloom.as_ref().expect("bloom filter built"),
                out: &mut self.output,
            },
            Family::Gather => KernelIo::Gather {
                src: &self.input,
                idx: &self.input2, // values < 97 < n: always in bounds
                out: &mut self.output,
            },
        };
        hef_kernels::run(self.family, cfg, &mut io)
    }
}

impl CostEvaluator for MeasuredCost {
    fn cost(&mut self, cfg: HybridConfig) -> f64 {
        // Probe once: off-grid nodes are infinitely expensive.
        if !self.run_once(cfg) {
            return f64::INFINITY;
        }
        // Shared clock discipline with the bench harness: warm-up run,
        // then best-of-`trials` wall time (cycles of the same best run).
        let (secs, cycles) = hef_testutil::time_best_of_cycles(self.trials, || {
            self.run_once(cfg);
        });
        self.last_cycles = cycles;
        secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A convex synthetic cost surface with a known optimum.
    struct Synthetic {
        opt: HybridConfig,
        calls: usize,
    }

    impl CostEvaluator for Synthetic {
        fn cost(&mut self, cfg: HybridConfig) -> f64 {
            self.calls += 1;
            let vd = (V_AXIS.iter().position(|&x| x == cfg.v).unwrap() as f64
                - V_AXIS.iter().position(|&x| x == self.opt.v).unwrap() as f64)
                .abs();
            let sd = (cfg.s as f64 - self.opt.s as f64).abs();
            let pd = (cfg.p as f64 - self.opt.p as f64).abs();
            1.0 + vd + sd + pd
        }
    }

    #[test]
    fn finds_the_optimum_of_a_convex_surface() {
        for opt in [
            HybridConfig::new(1, 3, 2),
            HybridConfig::new(8, 0, 1),
            HybridConfig::new(1, 1, 3),
        ] {
            let mut eval = Synthetic { opt, calls: 0 };
            let out = optimize(HybridConfig::new(1, 1, 1), &mut eval);
            assert_eq!(out.best, opt, "from (1,1,1)");
            assert!(
                out.tested.len() < all_configs().count(),
                "search must prune"
            );
        }
    }

    #[test]
    fn pruning_tests_far_fewer_nodes_than_exhaustive() {
        let mut eval = Synthetic { opt: HybridConfig::new(1, 3, 2), calls: 0 };
        let pruned = optimize(HybridConfig::new(2, 2, 2), &mut eval);
        let tested = pruned.tested.len();
        let total = all_configs().count();
        assert!(
            tested * 2 < total,
            "tested {tested} of {total} — pruning ineffective"
        );
        assert_eq!(pruned.pruned(), total - tested);
    }

    #[test]
    fn neighbors_step_one_axis_position() {
        let n = neighbors(HybridConfig::new(2, 2, 2));
        assert!(n.contains(&HybridConfig::new(1, 2, 2)));
        assert!(n.contains(&HybridConfig::new(4, 2, 2))); // axis step 2→4
        assert!(n.contains(&HybridConfig::new(2, 1, 2)));
        assert!(n.contains(&HybridConfig::new(2, 3, 2)));
        assert!(n.contains(&HybridConfig::new(2, 2, 1)));
        assert!(n.contains(&HybridConfig::new(2, 2, 3)));
        assert_eq!(n.len(), 6);
    }

    #[test]
    fn neighbors_never_produce_empty_config() {
        for cfg in all_configs() {
            for n in neighbors(cfg) {
                assert!(n.v + n.s >= 1, "{cfg} -> {n}");
            }
        }
    }

    #[test]
    fn simulated_cost_prefers_packed_crc() {
        let t = crate::templates::crc64();
        let m = CpuModel::silver_4110();
        let mut eval = SimulatedCost::new(&m, &t);
        let serial = eval.cost(HybridConfig::new(1, 0, 1));
        let packed = eval.cost(HybridConfig::new(4, 0, 2));
        assert!(packed < serial, "packed {packed} vs serial {serial}");
    }

    #[test]
    fn measured_cost_runs_every_family() {
        for f in Family::ALL {
            let mut eval = MeasuredCost::new(f, 4096);
            let c = eval.cost(HybridConfig::new(1, 1, 1));
            assert!(c.is_finite() && c > 0.0, "{}", f.name());
        }
    }

    #[test]
    fn off_grid_neighbors_are_a_typed_error() {
        let e = try_neighbors(HybridConfig { v: 3, s: 1, p: 2 }).unwrap_err();
        assert!(matches!(e, HefError::OffGrid { v: 3, s: 1, p: 2 }), "{e}");
        let e = try_neighbors(HybridConfig { v: 1, s: 1, p: 9 }).unwrap_err();
        assert!(matches!(e, HefError::OffGrid { .. }));
    }

    /// An evaluator that returns NaN for one node.
    struct Poisoned {
        inner: Synthetic,
        bad: HybridConfig,
    }

    impl CostEvaluator for Poisoned {
        fn cost(&mut self, cfg: HybridConfig) -> f64 {
            if cfg == self.bad {
                f64::NAN
            } else {
                self.inner.cost(cfg)
            }
        }
    }

    #[test]
    fn nan_cost_never_wins_or_panics() {
        let opt = HybridConfig::new(1, 3, 2);
        let mut eval = Poisoned {
            inner: Synthetic { opt, calls: 0 },
            bad: HybridConfig::new(1, 2, 2),
        };
        let out = optimize(HybridConfig::new(1, 1, 1), &mut eval);
        assert!(out.best_cost.is_finite());
        assert_ne!(out.best, eval.bad);
        assert_eq!(out.best, opt);
    }

    #[test]
    fn downward_spike_cannot_hijack_best() {
        use hef_testutil::fault::{CostSpike, FaultPlan};
        let opt = HybridConfig::new(1, 3, 2);
        // Spike one mid-search measurement down 100×: the would-be-new-best
        // re-measurement (median of 3) must discard it.
        let plan = FaultPlan {
            cost_spikes: vec![CostSpike { trial: 7, factor: 0.01 }],
            ..Default::default()
        };
        hef_testutil::fault::with_plan(plan, || {
            let mut eval = SpikedCost { inner: Synthetic { opt, calls: 0 } };
            let out = optimize(HybridConfig::new(2, 2, 2), &mut eval);
            assert_eq!(out.best, opt, "spiked measurement became best");
        });
    }

    #[test]
    fn spiked_cost_is_transparent_without_spikes() {
        // An empty plan (taken to serialize against other fault tests):
        // the wrapper must not perturb any measurement.
        hef_testutil::fault::with_plan(Default::default(), || {
            let mut plain = Synthetic { opt: HybridConfig::new(1, 3, 2), calls: 0 };
            let mut wrapped =
                SpikedCost { inner: Synthetic { opt: HybridConfig::new(1, 3, 2), calls: 0 } };
            for cfg in all_configs().take(10) {
                assert_eq!(plain.cost(cfg), wrapped.cost(cfg));
            }
        });
    }

    #[test]
    fn exhaustive_covers_the_whole_grid() {
        let mut eval = Synthetic { opt: HybridConfig::new(1, 1, 1), calls: 0 };
        let out = exhaustive(&mut eval);
        assert_eq!(out.tested.len(), all_configs().count());
        assert_eq!(out.best, HybridConfig::new(1, 1, 1));
    }
}

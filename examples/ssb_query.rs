//! Run a Star Schema Benchmark query through all four engine flavors.
//!
//! Generates SSB data, builds the Q2.1 star plan (part ⋈ supplier ⋈ date
//! with a category and a region predicate, grouped by year and brand), and
//! executes it with the purely scalar, purely SIMD, HEF-hybrid, and
//! Voila-style engines — verifying that all four agree and reporting times.
//!
//! Run with: `cargo run --release --example ssb_query [-- <sf>]`

use std::time::Instant;

use hef::engine::{execute_star, ExecConfig, Flavor};
use hef::ssb::{build_plan, decode_gid, generate, QueryId};

fn main() {
    let sf: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);
    println!("generating SSB at sf={sf}…");
    let data = generate(sf, 42);
    println!(
        "  lineorder: {} rows ({:.1} MiB total)\n",
        data.lineorder.len(),
        data.bytes() as f64 / (1 << 20) as f64
    );

    let plan = build_plan(&data, QueryId::Q2_1);
    println!("Q2.1: select sum(lo_revenue), d_year, p_brand1");
    println!("      from lineorder ⋈ part ⋈ supplier ⋈ date");
    println!("      where p_category = 'MFGR#12' and s_region = 'AMERICA'");
    println!("      group by d_year, p_brand1;\n");

    let mut reference: Option<Vec<u64>> = None;
    for flavor in Flavor::ALL {
        let cfg = ExecConfig::for_flavor(flavor);
        let t = Instant::now();
        let out = execute_star(&plan, &data.lineorder, &cfg);
        let ms = t.elapsed().as_secs_f64() * 1e3;
        match &reference {
            None => reference = Some(out.groups.clone()),
            Some(r) => assert_eq!(&out.groups, r, "{} result mismatch", flavor.name()),
        }
        println!(
            "  {:<7} {:>8.2} ms   ({} result groups, {} rows matched)",
            flavor.name(),
            ms,
            out.results().len(),
            out.stats.rows_aggregated,
        );
    }

    // Show a few result rows, decoded back to (year, brand).
    let out = execute_star(&plan, &data.lineorder, &ExecConfig::scalar());
    println!("\nfirst result rows (year, brand-code, revenue):");
    for (gid, sum) in out.results().into_iter().take(5) {
        let codes = decode_gid(&plan, gid);
        println!("  {}  MFGR-brand#{}  {}", 1992 + codes[2], codes[0], sum);
    }
    println!("\nall four engine flavors produced identical results ✓");
}

//! Tune operators for processors you do not have.
//!
//! The paper evaluates on a Xeon Silver 4110 (one AVX-512 unit) and a Gold
//! 6240R (two). This example runs HEF's whole offline phase against the
//! cycle-level models of both parts — candidate generation, translation to
//! µop traces, and the pruning search over simulated cost — then prints the
//! per-CPU µops-per-cycle histograms (the paper's Figs. 11–14).
//!
//! Run with: `cargo run --release --example simulate_xeon`

use hef::core::{templates, to_loop_body, tune_simulated, Family, HybridConfig};
use hef::uarch::{simulate, CpuModel};

fn histogram(model: &CpuModel, family: Family, cfg: HybridConfig) -> [f64; 4] {
    let body = to_loop_body(&templates::for_family(family), cfg);
    simulate(model, &body, 120).hist_fractions()
}

fn main() {
    for model in [CpuModel::silver_4110(), CpuModel::gold_6240r()] {
        println!("=== {} ===", model.name);
        println!(
            "  {} SIMD pipe(s), {} scalar ALU pipes, {} shared\n",
            model.simd_pipes(),
            model.scalar_alu_pipes(),
            model.shared_pipes()
        );

        for family in [Family::Murmur, Family::Crc64, Family::Probe] {
            let tuned = tune_simulated(family, &model);
            println!("  tuned {}", tuned.describe());
        }

        println!("\n  µops issued per cycle, murmur (scalar / SIMD / hybrid n132):");
        for (label, cfg) in [
            ("scalar", HybridConfig::SCALAR),
            ("simd  ", HybridConfig::SIMD),
            ("hybrid", HybridConfig::new(1, 3, 2)),
        ] {
            let h = histogram(&model, Family::Murmur, cfg);
            println!(
                "    {label}:  0: {:>4.1}%   1: {:>4.1}%   2: {:>4.1}%   >=3: {:>4.1}%",
                h[0] * 100.0,
                h[1] * 100.0,
                h[2] * 100.0,
                h[3] * 100.0
            );
        }
        println!();
    }
    println!("hybrid execution fills issue slots that pure SIMD leaves empty —");
    println!("the mechanism behind the paper's Figs. 11–14.");
}

//! The *pack* optimization in isolation: the paper's Fig. 3 / §II.C story.
//!
//! `vpgatherqq` has latency 26 but reciprocal throughput 5 (Skylake-SP).
//! CRC64's table walk is a chain of dependent gathers, so a single
//! statement instance issues one gather every ~latency cycles. Packing
//! independent instances together drops the spacing toward the throughput.
//! This example shows the effect twice: measured on this machine, and on
//! the cycle-level port model of the paper's Xeon Silver 4110.
//!
//! Run with: `cargo run --release --example pack_effect`

use std::time::Instant;

use hef::core::{templates, to_loop_body};
use hef::kernels::{run, Family, HybridConfig, KernelIo};
use hef::uarch::{simulate, CpuModel};

fn main() {
    let n = 4_000_000;
    let input: Vec<u64> = (0..n as u64)
        .map(|i| i.wrapping_mul(0x2545_f491_4f6c_dd1d))
        .collect();
    let mut output = vec![0u64; n];

    let model = CpuModel::silver_4110();
    let template = templates::crc64();

    println!("CRC64 over {n} 64-bit elements — more independent gather chains in flight:\n");
    println!("node   in-flight   measured ms   Gelem/s   modeled cyc/elem (4110)");
    println!("-----------------------------------------------------------------");
    let mut baseline = None;
    for (v, p) in [(1, 1), (2, 1), (4, 1), (8, 1), (1, 4), (2, 4)] {
        let cfg = HybridConfig::new(v, 0, p);

        // Measured on this machine.
        let mut io = KernelIo::Map { input: &input, output: &mut output };
        assert!(run(Family::Crc64, cfg, &mut io));
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t = Instant::now();
            let mut io = KernelIo::Map { input: &input, output: &mut output };
            run(Family::Crc64, cfg, &mut io);
            best = best.min(t.elapsed().as_secs_f64());
        }

        // Modeled on the paper's Silver 4110.
        let body = to_loop_body(&template, cfg);
        let sim = simulate(&model, &body, 60);
        let cpe = sim.cycles as f64 / (cfg.step() * 60) as f64;

        if baseline.is_none() {
            baseline = Some(best);
        }
        println!(
            "{:<6} {:>9}   {:>11.2}   {:>7.3}   {:>8.2}  ({:.2}x vs n101)",
            cfg.to_string(),
            v * p,
            best * 1e3,
            n as f64 / best / 1e9,
            cpe,
            baseline.unwrap() / best,
        );
    }
    println!("\nthe paper's tuned CRC64 optimum is eight SIMD statements, no scalar —");
    println!("exactly the deep-packing end of this sweep (Tables VIII/IX).");
}

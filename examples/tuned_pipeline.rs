//! The deployment loop: tune once, persist, reuse — plus dynamic flavor
//! selection (the paper's §VII future-work item).
//!
//! 1. Run HEF's offline phase for the engine's kernel families and save the
//!    winning nodes to a registry file (the artifact a deployment ships).
//! 2. Reload the registry and build a hybrid engine config from it.
//! 3. Execute an SSB query with (a) the registry-tuned engine and (b) the
//!    sampling-based dynamic selector, verifying both against scalar.
//!
//! Run with: `cargo run --release --example tuned_pipeline`

use hef::core::{tune_measured, Family, Registry};
use hef::engine::{execute_star, execute_star_dynamic, ExecConfig};
use hef::ssb::{build_plan, generate, QueryId};

fn main() {
    // --- offline phase: tune and persist ---
    println!("offline phase: tuning the engine's kernel families…");
    let mut registry = Registry::new("this machine");
    for family in [Family::Probe, Family::Filter, Family::AggSum, Family::Gather] {
        let tuned = tune_measured(family, 2_000_000);
        println!("  {}", tuned.describe());
        registry.insert_tuned(&tuned);
    }
    let path = std::env::temp_dir().join("hef-tuned.txt");
    registry.save(&path).expect("save registry");
    println!("\nsaved registry to {}:\n{}", path.display(), registry.to_text());

    // --- online phase: reload and execute ---
    let registry = Registry::load(&path).expect("load registry");
    let mut cfg = ExecConfig::hybrid(
        registry.get_or_default(Family::Filter),
        registry.get_or_default(Family::Probe),
        registry.get_or_default(Family::AggSum),
    );
    cfg.gather = registry.get_or_default(Family::Gather);

    let data = generate(0.05, 7);
    let plan = build_plan(&data, QueryId::Q4_2);
    println!("running Q4.2 over {} lineorder rows…\n", data.lineorder.len());

    let t = std::time::Instant::now();
    let tuned_out = execute_star(&plan, &data.lineorder, &cfg);
    let tuned_ms = t.elapsed().as_secs_f64() * 1e3;

    let t = std::time::Instant::now();
    let scalar_out = execute_star(&plan, &data.lineorder, &ExecConfig::scalar());
    let scalar_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(tuned_out.groups, scalar_out.groups);

    let (dyn_out, selection) = execute_star_dynamic(&plan, &data.lineorder, 0.05);
    assert_eq!(dyn_out.groups, scalar_out.groups);

    println!("scalar engine:          {scalar_ms:8.2} ms");
    println!(
        "registry-tuned hybrid:  {tuned_ms:8.2} ms   ({:.2}x)",
        scalar_ms / tuned_ms
    );
    println!(
        "dynamic selector chose: {} (sampled {} rows)",
        selection.flavor.name(),
        selection.sample_rows
    );
    for (flavor, secs) in &selection.sample_secs {
        println!("    sample {:<7} {:8.3} ms", flavor.name(), secs * 1e3);
    }
    println!("\nall engines agree ✓");
}

//! Inspect HEF's translator: the paper's Fig. 6 reproduced live.
//!
//! Prints the MurmurHash operator template expanded at three nodes —
//! purely SIMD, the paper's tuned hybrid `(v=1, s=3, p=2)`, and a deeper
//! pack — plus the candidate generator's reasoning for the two Xeons the
//! paper evaluates on.
//!
//! Run with: `cargo run --example translator`

use hef::core::{initial_candidate, templates, translate, HybridConfig};
use hef::uarch::CpuModel;

fn main() {
    let template = templates::murmur();

    println!("=== operator template (hybrid intermediate description) ===\n");
    for (i, st) in template.stmts.iter().enumerate() {
        println!("  s{i}: {:?} {:?} <- {:?}", st.op, st.dst, st.args);
    }

    for cfg in [
        HybridConfig::SIMD,
        HybridConfig::new(1, 3, 2), // the paper's Fig. 6(b) node
        HybridConfig::new(2, 3, 2), // the paper's Fig. 6(c) node
    ] {
        println!("\n=== translated target code, node {cfg} ===\n");
        let code = translate(&template, cfg);
        let listing = code.listing();
        // The full listing for big nodes is long; show the shape.
        for line in listing.lines().take(24) {
            println!("{line}");
        }
        let total = listing.lines().count();
        if total > 24 {
            println!("    … ({} more lines)", total - 24);
        }
    }

    println!("\n=== candidate generator (§IV.A) ===\n");
    for model in [CpuModel::silver_4110(), CpuModel::gold_6240r()] {
        let init = initial_candidate(&model, &template);
        println!(
            "  {}: {} SIMD pipes, {} scalar ALU pipes ({} shared) -> initial node {}",
            model.name,
            model.simd_pipes(),
            model.scalar_alu_pipes(),
            model.shared_pipes(),
            init
        );
    }
    println!("\n(the paper's measured optimum for MurmurHash is n132 on both CPUs)");
}

//! Quickstart: the full HEF offline phase on this machine, end to end.
//!
//! 1. The candidate generator proposes an initial `(v, s, p)` node from
//!    this CPU's pipeline counts and the instruction tables.
//! 2. The optimizer searches the neighbourhood, timing real compiled
//!    kernels and pruning losers (Algorithm 2).
//! 3. The tuned operator is used to hash a batch of data, and we compare
//!    it against the purely scalar and purely SIMD baselines.
//!
//! Run with: `cargo run --release --example quickstart`

use std::time::Instant;

use hef::core::{tune_measured, Family, HybridConfig};
use hef::kernels::{run, KernelIo};

fn time_hash(cfg: HybridConfig, input: &[u64], output: &mut [u64]) -> f64 {
    // Warm-up, then best of 3.
    let mut io = KernelIo::Map { input, output };
    assert!(run(Family::Murmur, cfg, &mut io), "{cfg} not on the compiled grid");
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        let mut io = KernelIo::Map { input, output };
        run(Family::Murmur, cfg, &mut io);
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    println!("SIMD backend in use: {:?}\n", hef::hid::Backend::native());

    // --- offline phase: tune the MurmurHash operator on this machine ---
    println!("tuning murmurhash64 (this takes a few seconds)…");
    let tuned = tune_measured(Family::Murmur, 4_000_000);
    println!("  {}", tuned.describe());
    println!(
        "  search pruned {} of {} grid nodes\n",
        tuned.outcome.pruned(),
        hef::kernels::all_configs().count()
    );

    // --- online phase: use the tuned operator ---
    let n = 8_000_000;
    let input: Vec<u64> = (0..n as u64)
        .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .collect();
    let mut output = vec![0u64; n];

    let scalar = time_hash(HybridConfig::SCALAR, &input, &mut output);
    let simd = time_hash(HybridConfig::SIMD, &input, &mut output);
    let hybrid = time_hash(tuned.cfg, &input, &mut output);

    println!("hashing {n} elements:");
    println!("  scalar {:>8.2} ms", scalar * 1e3);
    println!("  simd   {:>8.2} ms", simd * 1e3);
    println!(
        "  hybrid {:>8.2} ms  ({:.2}x vs scalar, {:.2}x vs SIMD)",
        hybrid * 1e3,
        scalar / hybrid,
        simd / hybrid
    );
}
